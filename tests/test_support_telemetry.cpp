// Telemetry subsystem tests: registry thread-safety under the pool,
// histogram bucket semantics, JSON export shape, the null-sink zero-cost
// path, and the cross-solver ConvergenceReport vocabulary.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/equilibrium_cache.hpp"
#include "core/oracle.hpp"
#include "core/params.hpp"
#include "numerics/vi.hpp"
#include "support/parallel.hpp"
#include "support/telemetry.hpp"

namespace {

using namespace hecmine;
using support::Telemetry;

TEST(Counter, AccumulatesAndNeverDecreases) {
  support::Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  support::Gauge gauge;
  gauge.set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.5);
}

TEST(HistogramMetric, BucketEdgesAreInclusiveUpperBounds) {
  support::HistogramMetric histogram({1.0, 2.0, 4.0});
  // bucket i counts v <= edges[i]; edge values land in their own bucket,
  // anything beyond the last edge goes to the implicit overflow bucket.
  histogram.observe(0.5);   // <= 1
  histogram.observe(1.0);   // <= 1 (inclusive)
  histogram.observe(1.5);   // <= 2
  histogram.observe(4.0);   // <= 4
  histogram.observe(100.0); // overflow
  const auto counts = histogram.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.min(), 0.5);
  EXPECT_DOUBLE_EQ(histogram.max(), 100.0);
  EXPECT_DOUBLE_EQ(histogram.sum(), 107.0);
}

TEST(HistogramMetric, EmptyReportsZeros) {
  support::HistogramMetric histogram({1.0});
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.min(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.mean(), 0.0);
}

TEST(HistogramMetric, RejectsUnsortedEdges) {
  EXPECT_THROW(support::HistogramMetric({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(support::HistogramMetric({}), std::invalid_argument);
}

TEST(HistogramMetric, QuantilesOnAUniformGridAreExact) {
  // One observation per unit bucket 1..10: every quantile interpolates
  // exactly. p50 = 5, p95 = 9.5, p99 = 9.9.
  support::HistogramMetric histogram(
      {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0});
  for (int v = 1; v <= 10; ++v) histogram.observe(static_cast<double>(v));
  EXPECT_NEAR(histogram.quantile(0.50), 5.0, 1e-12);
  EXPECT_NEAR(histogram.quantile(0.95), 9.5, 1e-12);
  EXPECT_NEAR(histogram.quantile(0.99), 9.9, 1e-12);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.0), 1.0);   // observed min
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 10.0);  // observed max
}

TEST(HistogramMetric, QuantilesClampToTheObservedRange) {
  // All mass at one value inside a wide bucket: interpolation must not
  // stretch across the bucket — every quantile is the value itself.
  support::HistogramMetric histogram({10.0});
  for (int i = 0; i < 10; ++i) histogram.observe(5.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.95), 5.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.99), 5.0);
}

TEST(HistogramMetric, QuantileOfEmptyIsZero) {
  support::HistogramMetric histogram({1.0});
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.95), 0.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.99), 0.0);
}

TEST(HistogramMetric, SingleSampleIsEveryQuantile) {
  // One observation: min == max == the sample, so every quantile must
  // collapse to it regardless of where it lands inside the bucket.
  support::HistogramMetric histogram({1.0, 10.0});
  histogram.observe(3.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.50), 3.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.95), 3.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.99), 3.0);
}

TEST(HistogramMetric, SkewedDistributionSeparatesP50FromTail) {
  // 95 fast observations and 5 slow ones: the median stays in the fast
  // bucket while p99 reaches into the tail.
  support::HistogramMetric histogram({1.0, 2.0, 50.0, 100.0});
  for (int i = 0; i < 95; ++i) histogram.observe(0.5);
  for (int i = 0; i < 5; ++i) histogram.observe(80.0);
  EXPECT_LE(histogram.quantile(0.50), 1.0);
  EXPECT_GT(histogram.quantile(0.99), 50.0);
  EXPECT_LE(histogram.quantile(0.99), 80.0);
}

TEST(GeometricEdges, GrowsByFactor) {
  const auto edges = support::geometric_edges(1.0, 2.0, 4);
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_DOUBLE_EQ(edges[0], 1.0);
  EXPECT_DOUBLE_EQ(edges[3], 8.0);
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
}

TEST(MetricsRegistry, HandlesAreStableAndFirstEdgesWin) {
  support::MetricsRegistry registry;
  support::Counter& a = registry.counter("x");
  support::Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  support::HistogramMetric& h1 = registry.histogram("h", {1.0, 2.0});
  support::HistogramMetric& h2 = registry.histogram("h", {5.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h1.edges().size(), 2u);  // first registration wins
}

TEST(MetricsRegistry, ConcurrentIncrementsUnderThePoolLoseNothing) {
  support::MetricsRegistry registry;
  constexpr std::size_t kTasks = 64;
  constexpr int kPerTask = 1000;
  // Every task resolves the instruments by name (hammering the stripe
  // locks) and increments; nothing may be lost or torn.
  support::parallel_for(
      kTasks,
      [&](std::size_t task) {
        support::Counter& counter = registry.counter("pool.counter");
        support::HistogramMetric& histogram =
            registry.histogram("pool.histogram", {10.0, 100.0, 1000.0});
        for (int i = 0; i < kPerTask; ++i) {
          counter.add();
          histogram.observe(static_cast<double>(task));
        }
      },
      0);
  EXPECT_EQ(registry.counter("pool.counter").value(), kTasks * kPerTask);
  EXPECT_EQ(registry.histogram("pool.histogram", {}).count(),
            kTasks * kPerTask);
}

TEST(MetricsRegistry, PoolTasksAggregateWorkCountersDeterministically) {
  // Pool workers install the issuer's sink (TelemetryScope in the worker
  // loop), so work counted inside tasks lands in the sink's WorkProfile —
  // and sums to the same total regardless of worker count.
  support::Telemetry sink;
  const support::TelemetryScope scope(&sink);
  constexpr std::size_t kTasks = 32;
  support::parallel_for(
      kTasks,
      [&](std::size_t i) {
        support::prof::ThreadWorkBlock* work = support::prof::current_block();
        ASSERT_NE(work, nullptr);
        work->add(support::prof::WorkField::kBestResponseEvals, i + 1);
        sink.metrics.counter("pool.work").add();
      },
      4);
  const support::prof::WorkCounters total = sink.work.total();
  EXPECT_EQ(total[support::prof::WorkField::kBestResponseEvals],
            kTasks * (kTasks + 1) / 2);
  EXPECT_EQ(sink.metrics.counter("pool.work").value(), kTasks);
}

TEST(MetricsRegistry, SnapshotIsSortedByName) {
  support::MetricsRegistry registry;
  registry.counter("zeta").add();
  registry.counter("alpha").add();
  registry.gauge("mid").set(1.0);
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[1].name, "zeta");
  ASSERT_EQ(snap.gauges.size(), 1u);
}

TEST(ScopedTimer, NullSinkIsZeroCostAndRecordsNothing) {
  support::ScopedTimer timer(nullptr);
  EXPECT_DOUBLE_EQ(timer.elapsed_ms(), 0.0);
}

TEST(ScopedTimer, RecordsIntoSink) {
  support::HistogramMetric sink({1e9});
  {
    support::ScopedTimer timer(&sink);
  }
  EXPECT_EQ(sink.count(), 1u);
  EXPECT_GE(sink.sum(), 0.0);
}

TEST(SolveTrace, NestsSpansPerThreadAndDropsAtCapacity) {
  support::SolveTrace trace(3);
  const int outer = trace.begin("outer");
  const int inner = trace.begin("inner");
  trace.end(inner);
  trace.end(outer);
  const int third = trace.begin("third");
  trace.end(third);
  EXPECT_EQ(trace.begin("overflow"), -1);  // capacity 3 reached
  trace.end(-1);                           // must be a safe no-op
  EXPECT_EQ(trace.dropped(), 1u);

  const auto spans = trace.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].parent, -1);  // third opened after outer closed
  for (const auto& span : spans) EXPECT_GE(span.duration_ms, 0.0);
}

TEST(SolveTrace, NullScopeIsNoop) {
  // Scope must tolerate a null trace — that is the telemetry-off hot path.
  support::SolveTrace::Scope scope(nullptr, "nothing");
}

TEST(MetricsRegistry, SnapshotCarriesHistogramPercentiles) {
  support::MetricsRegistry registry;
  auto& histogram = registry.histogram(
      "p.hist", {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0});
  for (int v = 1; v <= 10; ++v) histogram.observe(static_cast<double>(v));
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_NEAR(snap.histograms[0].p50, 5.0, 1e-12);
  EXPECT_NEAR(snap.histograms[0].p95, 9.5, 1e-12);
  EXPECT_NEAR(snap.histograms[0].p99, 9.9, 1e-12);
}

// --- IterationProbe -------------------------------------------------------

support::IterationProbe::Record probe_record(int iteration, double residual) {
  support::IterationProbe::Record record;
  record.solver = "test.solver";
  record.solve = 1;
  record.iteration = iteration;
  record.residual = residual;
  return record;
}

TEST(IterationProbe, DisarmedRecordIsDropped) {
  support::IterationProbe probe;
  EXPECT_FALSE(probe.armed());
  probe.record(probe_record(0, 1.0));
  EXPECT_EQ(probe.total(), 0u);
  EXPECT_TRUE(probe.snapshot().empty());
}

TEST(IterationProbe, ArmedRingKeepsTheNewestRecordsInOrder) {
  support::IterationProbe probe(4);
  probe.arm();
  for (int i = 0; i < 10; ++i)
    probe.record(probe_record(i, 1.0 / (1.0 + i)));
  EXPECT_EQ(probe.total(), 10u);
  EXPECT_EQ(probe.overwritten(), 6u);
  const auto records = probe.snapshot();
  ASSERT_EQ(records.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(records[static_cast<std::size_t>(i)].iteration, 6 + i);
  }
}

TEST(IterationProbe, SolveIdsAreUniqueAndIncreasing) {
  support::IterationProbe probe;
  const auto a = probe.next_solve_id();
  const auto b = probe.next_solve_id();
  EXPECT_GT(a, 0u);
  EXPECT_GT(b, a);
}

TEST(IterationProbe, StreamsJsonlWithSchemaHeader) {
  const std::string path =
      testing::TempDir() + "/hecmine_probe_stream.jsonl";
  {
    support::IterationProbe probe;
    probe.stream_to(path);
    EXPECT_TRUE(probe.armed());  // streaming arms the probe
    auto record = probe_record(3, 0.25);
    record.price_edge = 2.0;
    record.price_cloud = 1.0;
    record.total_edge = 6.0;
    record.total_cloud = 12.0;
    record.step = 0.5;
    record.cap_active = true;
    probe.record(record);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::string line;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(header.find("hecmine.iterlog.v1"), std::string::npos);
  EXPECT_NE(line.find("\"solver\": \"test.solver\""), std::string::npos)
      << line;
  EXPECT_NE(line.find("\"iteration\": 3"), std::string::npos) << line;
  EXPECT_NE(line.find("\"residual\": 0.25"), std::string::npos) << line;
  EXPECT_NE(line.find("\"cap_active\": true"), std::string::npos) << line;
  std::remove(path.c_str());
}

TEST(IterationProbe, ConcurrentRecordsUnderThePoolLoseNothing) {
  support::IterationProbe probe(64);
  probe.arm();
  constexpr std::size_t kTasks = 8;
  constexpr int kPerTask = 100;
  support::parallel_for(
      kTasks,
      [&](std::size_t task) {
        for (int i = 0; i < kPerTask; ++i)
          probe.record(probe_record(i, static_cast<double>(task)));
      },
      0);
  EXPECT_EQ(probe.total(), kTasks * kPerTask);
  EXPECT_EQ(probe.snapshot().size(), 64u);
  EXPECT_EQ(probe.overwritten(), kTasks * kPerTask - 64u);
}

TEST(TelemetryScope, InstallsAndRestoresThreadLocalSink) {
  EXPECT_EQ(support::current_telemetry(), nullptr);
  Telemetry sink;
  {
    support::TelemetryScope scope(&sink);
    EXPECT_EQ(support::current_telemetry(), &sink);
    {
      Telemetry nested;
      support::TelemetryScope inner(&nested);
      EXPECT_EQ(support::current_telemetry(), &nested);
    }
    EXPECT_EQ(support::current_telemetry(), &sink);
  }
  EXPECT_EQ(support::current_telemetry(), nullptr);
}

// Minimal structural JSON check: balanced braces/brackets outside strings,
// and an even number of unescaped quotes. Not a parser, but catches the
// classic emission bugs (dangling comma handling is covered by substring
// checks below).
bool json_balanced(const std::string& text) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') ++braces;
    else if (c == '}') --braces;
    else if (c == '[') ++brackets;
    else if (c == ']') --brackets;
    if (braces < 0 || brackets < 0) return false;
  }
  return braces == 0 && brackets == 0 && !in_string;
}

TEST(ToJson, EmptySinkIsWellFormed) {
  Telemetry telemetry;
  const std::string json = support::to_json(telemetry);
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"schema\": \"hecmine.telemetry.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
}

TEST(ToJson, CarriesInstrumentsAndTrace) {
  Telemetry telemetry;
  telemetry.metrics.counter("a.count").add(7);
  telemetry.metrics.gauge("b.gauge").set(0.125);
  telemetry.metrics.histogram("c.hist", {1.0, 2.0}).observe(1.5);
  {
    support::SolveTrace::Scope scope(&telemetry.trace, "phase");
  }
  const std::string json = support::to_json(telemetry);
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"a.count\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"b.gauge\": 0.125"), std::string::npos) << json;
  EXPECT_NE(json.find("\"counts\": [0, 1, 0]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\": \"phase\""), std::string::npos) << json;
}

TEST(ToJson, NonFiniteGaugesDegradeToNull) {
  Telemetry telemetry;
  telemetry.metrics.gauge("bad").set(std::nan(""));
  const std::string json = support::to_json(telemetry);
  EXPECT_TRUE(json_balanced(json));
  EXPECT_NE(json.find("\"bad\": null"), std::string::npos) << json;
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
}

TEST(WriteJson, RoundTripsThroughTheFile) {
  Telemetry telemetry;
  telemetry.metrics.counter("file.count").add(3);
  const std::string path =
      testing::TempDir() + "/hecmine_telemetry_roundtrip.json";
  support::write_json(telemetry, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), support::to_json(telemetry));
  std::remove(path.c_str());
}

TEST(PrintSummary, RendersTablesForEverySection) {
  Telemetry telemetry;
  telemetry.metrics.counter("s.count").add(2);
  telemetry.metrics.gauge("s.gauge").set(1.0);
  telemetry.metrics.histogram("s.hist", {1.0}).observe(0.5);
  {
    support::SolveTrace::Scope scope(&telemetry.trace, "root");
  }
  std::ostringstream os;
  support::print_summary(os, telemetry);
  const std::string text = os.str();
  EXPECT_NE(text.find("s.count"), std::string::npos);
  EXPECT_NE(text.find("s.gauge"), std::string::npos);
  EXPECT_NE(text.find("s.hist"), std::string::npos);
  EXPECT_NE(text.find("root"), std::string::npos);
}

// --- cross-solver ConvergenceReport consistency ---------------------------

core::NetworkParams standalone_params() {
  core::NetworkParams params;
  params.edge_capacity = 8.0;  // matches test_core_oracle's standalone game
  return params;
}

TEST(ConvergenceReport, ProfileViAndGnepAgreeOnTheVocabulary) {
  const core::NetworkParams params = standalone_params();
  const core::Prices prices{2.2, 1.0};
  const std::vector<double> budgets{25.0, 35.0, 45.0};

  // Same game through both GNEP algorithms; each result's report() must
  // mirror the struct's own fields, and both must converge.
  for (const auto algorithm :
       {core::GnepAlgorithm::kSharedPrice, core::GnepAlgorithm::kVi}) {
    const core::StandaloneGnepOracle oracle(params, budgets, algorithm);
    const core::EquilibriumProfile profile = oracle.solve(prices);
    const support::ConvergenceReport report = profile.report();
    EXPECT_TRUE(report.converged);
    EXPECT_EQ(report.converged, profile.converged);
    EXPECT_EQ(report.iterations, profile.iterations);
    EXPECT_DOUBLE_EQ(report.residual, profile.residual);
    EXPECT_GT(report.iterations, 0);
  }

  // A raw VI solve reports through the same vocabulary.
  num::VariationalInequality vi;
  vi.map = [](const std::vector<double>& x) {
    return std::vector<double>{x[0] - 0.5};
  };
  vi.project = [](const std::vector<double>& x) {
    return std::vector<double>{std::clamp(x[0], 0.0, 1.0)};
  };
  const num::VIResult solved = num::solve_extragradient(vi, {0.0});
  const support::ConvergenceReport vi_report = solved.report();
  EXPECT_TRUE(vi_report.converged);
  EXPECT_EQ(vi_report.iterations, solved.iterations);
  EXPECT_DOUBLE_EQ(vi_report.residual, solved.residual);
}

TEST(InstrumentedOracle, CountsSolvesAndPropagatesTheSinkToDeepLayers) {
  const core::NetworkParams params = standalone_params();
  const core::Prices prices{2.2, 1.0};
  const std::vector<double> budgets{25.0, 35.0, 45.0};

  Telemetry telemetry;
  core::SolveContext context;
  context.telemetry = &telemetry;
  const auto oracle = core::make_follower_oracle(
      params, budgets, core::EdgeMode::kStandalone, context);
  (void)oracle->solve(prices);

  EXPECT_EQ(telemetry.metrics.counter("oracle.solves").value(), 1u);
  // The shared-price GNEP runs under the TLS scope, so its counters land
  // in the same sink without any plumbing through MinerSolveOptions.
  EXPECT_EQ(telemetry.metrics.counter("gnep.solves").value(), 1u);
  EXPECT_EQ(telemetry.metrics.histogram("oracle.iterations", {}).count(), 1u);
  EXPECT_EQ(support::current_telemetry(), nullptr);  // scope restored
}

TEST(InstrumentedOracle, CacheHitsDoNotInflateSolveCounters) {
  const core::NetworkParams params = standalone_params();
  const core::Prices prices{2.2, 1.0};
  const std::vector<double> budgets{25.0, 35.0, 45.0};

  Telemetry telemetry;
  core::FollowerEquilibriumCache cache;
  core::SolveContext context;
  context.telemetry = &telemetry;
  context.cache = &cache;
  const auto oracle = core::make_follower_oracle(
      params, budgets, core::EdgeMode::kStandalone, context);
  (void)oracle->solve(prices);
  (void)oracle->solve(prices);  // cache hit: must not count as a solve

  EXPECT_EQ(telemetry.metrics.counter("oracle.solves").value(), 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  core::record_cache_stats(telemetry, cache.stats());
  EXPECT_DOUBLE_EQ(telemetry.metrics.gauge("cache.hits").value(), 1.0);
  EXPECT_DOUBLE_EQ(telemetry.metrics.gauge("cache.hit_rate").value(), 0.5);
}

TEST(TelemetryScope, PoolWorkersNestScopedSolvesWithoutCrossTalk) {
  // Satellite-case regression: a pool worker installs its own scope, then
  // spawns a nested scoped solve (the instrumented oracle installs a
  // second TLS scope around the follower solve). The nested scope must
  // capture the solve's counters, restore the worker's own sink on exit,
  // and never leak across workers or to the main thread.
  const core::NetworkParams params = standalone_params();
  const core::Prices prices{2.2, 1.0};
  const std::vector<double> budgets{25.0, 35.0, 45.0};
  constexpr std::size_t kTasks = 8;
  std::vector<Telemetry> worker_sinks(kTasks);
  std::vector<Telemetry> solve_sinks(kTasks);
  std::vector<int> restored(kTasks, 0);
  support::parallel_for(
      kTasks,
      [&](std::size_t i) {
        support::TelemetryScope worker_scope(&worker_sinks[i]);
        worker_sinks[i].metrics.counter("worker.tick").add();
        core::SolveContext context;
        context.telemetry = &solve_sinks[i];
        const auto oracle = core::make_follower_oracle(
            params, budgets, core::EdgeMode::kStandalone, context);
        (void)oracle->solve(prices);
        // The oracle's nested scope must have restored this worker's sink.
        restored[i] = support::current_telemetry() == &worker_sinks[i];
      },
      0);
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(restored[i], 1) << "worker " << i;
    // The solve's counters landed in the nested sink, not the worker's.
    EXPECT_EQ(solve_sinks[i].metrics.counter("oracle.solves").value(), 1u);
    EXPECT_EQ(solve_sinks[i].metrics.counter("gnep.solves").value(), 1u);
    EXPECT_EQ(worker_sinks[i].metrics.counter("oracle.solves").value(), 0u);
    EXPECT_EQ(worker_sinks[i].metrics.counter("worker.tick").value(), 1u);
  }
  EXPECT_EQ(support::current_telemetry(), nullptr);  // main thread untouched
}

TEST(NullSink, SolveWithoutTelemetryTouchesNoGlobalState) {
  const core::NetworkParams params = standalone_params();
  const core::Prices prices{2.2, 1.0};
  const std::vector<double> budgets{25.0, 35.0, 45.0};

  // No sink anywhere: the solve must neither crash nor install telemetry.
  const auto oracle = core::make_follower_oracle(
      params, budgets, core::EdgeMode::kStandalone, core::SolveContext{});
  const core::EquilibriumProfile profile = oracle->solve(prices);
  EXPECT_TRUE(profile.converged);
  EXPECT_EQ(support::current_telemetry(), nullptr);
}

}  // namespace
