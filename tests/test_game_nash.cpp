// Tests for game/nash on games with known closed-form equilibria.
#include "game/nash.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"

namespace hecmine::game {
namespace {

TEST(FlattenUnflatten, RoundTrips) {
  const Profile profile{{1.0, 2.0}, {3.0}, {4.0, 5.0, 6.0}};
  const auto flat = flatten(profile);
  ASSERT_EQ(flat.size(), 6u);
  const auto back = unflatten(flat, {2, 1, 3});
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0], (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(back[2], (std::vector<double>{4.0, 5.0, 6.0}));
}

TEST(FlattenUnflatten, ValidatesSizes) {
  EXPECT_THROW((void)unflatten({1.0, 2.0}, {3}), support::PreconditionError);
}

// Cournot duopoly: inverse demand P = a - b(q1 + q2), unit cost c.
// Best response q_i = (a - c - b q_j) / (2b); NE at q_i = (a - c)/(3b).
struct Cournot {
  double a = 12.0, b = 1.0, c = 3.0;

  [[nodiscard]] double ne_quantity() const { return (a - c) / (3.0 * b); }

  [[nodiscard]] BestResponseFn best_response() const {
    return [*this](const Profile& profile, std::size_t player) {
      const double rival = profile[1 - player][0];
      return std::vector<double>{
          std::max(0.0, (a - c - b * rival) / (2.0 * b))};
    };
  }

  [[nodiscard]] UtilityFn utility() const {
    return [*this](const Profile& profile, std::size_t player) {
      const double total = profile[0][0] + profile[1][0];
      return profile[player][0] * (a - b * total - c);
    };
  }
};

TEST(BestResponse, GaussSeidelFindsCournotEquilibrium) {
  const Cournot game;
  const auto result =
      solve_best_response(game.best_response(), {{0.0}, {10.0}});
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.profile[0][0], game.ne_quantity(), 1e-7);
  EXPECT_NEAR(result.profile[1][0], game.ne_quantity(), 1e-7);
}

TEST(BestResponse, JacobiWithDampingFindsCournotEquilibrium) {
  const Cournot game;
  BestResponseOptions options;
  options.sweep = BestResponseOptions::Sweep::kJacobi;
  options.damping = 0.6;
  const auto result =
      solve_best_response(game.best_response(), {{5.0}, {5.0}}, options);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.profile[0][0], game.ne_quantity(), 1e-6);
}

TEST(BestResponse, ConvergesFromManyStarts) {
  const Cournot game;
  for (double start : {0.0, 1.0, 4.5, 9.0, 20.0}) {
    const auto result =
        solve_best_response(game.best_response(), {{start}, {start}});
    ASSERT_TRUE(result.converged);
    EXPECT_NEAR(result.profile[0][0], game.ne_quantity(), 1e-6);
  }
}

TEST(BestResponse, ReportsNonConvergenceOnTightBudget) {
  const Cournot game;
  BestResponseOptions options;
  options.max_iterations = 1;
  options.tolerance = 1e-15;
  const auto result =
      solve_best_response(game.best_response(), {{0.0}, {10.0}}, options);
  EXPECT_FALSE(result.converged);
  EXPECT_GT(result.residual, 0.0);
}

TEST(BestResponse, ValidatesInputs) {
  const Cournot game;
  EXPECT_THROW((void)solve_best_response(game.best_response(), {}),
               support::PreconditionError);
  BestResponseOptions bad;
  bad.damping = 1.5;
  EXPECT_THROW(
      (void)solve_best_response(game.best_response(), {{0.0}, {0.0}}, bad),
      support::PreconditionError);
}

TEST(Exploitability, ZeroAtEquilibriumPositiveElsewhere) {
  const Cournot game;
  const double q = game.ne_quantity();
  EXPECT_NEAR(
      exploitability(game.best_response(), game.utility(), {{q}, {q}}), 0.0,
      1e-9);
  EXPECT_GT(
      exploitability(game.best_response(), game.utility(), {{0.1}, {0.1}}),
      1.0);
}

}  // namespace
}  // namespace hecmine::game
