// Bitwise determinism of the parallelized hot paths: the same inputs must
// produce the same bits for every thread count. The suite compares
// threads=1 against threads=4 on the Stackelberg leader iteration, the SP
// leader stage, and the Monte-Carlo population sweep, and checks the MC
// estimator against the exact pmf expectation.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/dynamic.hpp"
#include "core/population.hpp"
#include "core/sp.hpp"
#include "game/stackelberg.hpp"
#include "numerics/optimize.hpp"

namespace hecmine {
namespace {

core::NetworkParams test_params() {
  core::NetworkParams params;
  params.reward = 100.0;
  params.fork_rate = 0.2;
  params.edge_success = 0.9;
  return params;
}

TEST(ParallelDeterminism, MaximizeScanIsBitwiseStableAcrossThreadCounts) {
  const auto f = [](double x) {
    return std::sin(3.0 * x) - 0.2 * (x - 1.0) * (x - 1.0);
  };
  num::Maximize1DOptions options;
  options.grid_points = 37;
  const auto serial = num::maximize_scan_parallel(f, 0.0, 4.0, options, 1);
  for (int threads : {2, 4, 7}) {
    const auto parallel =
        num::maximize_scan_parallel(f, 0.0, 4.0, options, threads);
    EXPECT_EQ(parallel.argmax, serial.argmax) << "threads=" << threads;
    EXPECT_EQ(parallel.value, serial.value) << "threads=" << threads;
  }
}

TEST(ParallelDeterminism, StackelbergLeaderIterationMatchesSerialBitwise) {
  // Two leaders with coupled concave payoffs (a pricing-style duopoly).
  const game::LeaderPayoffFn payoff = [](const std::vector<double>& actions,
                                         std::size_t leader) {
    const double own = actions[leader];
    const double other = actions[1 - leader];
    return own * (10.0 - 2.0 * own + 0.5 * other);
  };
  const std::vector<game::ActionBounds> bounds{{0.1, 8.0}, {0.1, 8.0}};
  game::StackelbergOptions options;
  options.grid_points = 24;
  options.threads = 1;
  const auto serial =
      game::solve_stackelberg(payoff, {1.0, 1.0}, bounds, options);
  options.threads = 4;
  const auto parallel =
      game::solve_stackelberg(payoff, {1.0, 1.0}, bounds, options);
  ASSERT_TRUE(serial.converged);
  EXPECT_EQ(parallel.actions, serial.actions);  // bitwise
  EXPECT_EQ(parallel.payoffs, serial.payoffs);
  EXPECT_EQ(parallel.rounds, serial.rounds);
}

TEST(ParallelDeterminism, StackelbergPayoffsAreReusedFromTheFinalScan) {
  const game::LeaderPayoffFn payoff = [](const std::vector<double>& actions,
                                         std::size_t leader) {
    const double own = actions[leader];
    const double other = actions[1 - leader];
    return own * (10.0 - 2.0 * own + 0.5 * other);
  };
  const std::vector<game::ActionBounds> bounds{{0.1, 8.0}, {0.1, 8.0}};
  game::StackelbergOptions options;
  options.grid_points = 24;
  options.threads = 1;
  const auto result =
      game::solve_stackelberg(payoff, {1.0, 1.0}, bounds, options);
  ASSERT_TRUE(result.converged);
  // At convergence the reused scan values must agree with a fresh
  // evaluation at the final profile to within the residual scale.
  for (std::size_t leader = 0; leader < 2; ++leader) {
    EXPECT_NEAR(result.payoffs[leader], payoff(result.actions, leader),
                1e-5 + 10.0 * result.residual);
  }
}

TEST(ParallelDeterminism, SpLeaderStageMatchesSerialBitwise) {
  const core::NetworkParams params = test_params();
  core::SpSolveOptions options;
  options.grid_points = 12;
  options.max_rounds = 6;  // bounded: determinism needs no convergence
  options.context.threads = 1;
  const auto serial = core::solve_leader_stage_homogeneous(
      params, 200.0, 5, core::EdgeMode::kConnected, options);
  options.context.threads = 4;
  const auto parallel = core::solve_leader_stage_homogeneous(
      params, 200.0, 5, core::EdgeMode::kConnected, options);
  EXPECT_EQ(parallel.prices.edge, serial.prices.edge);  // bitwise
  EXPECT_EQ(parallel.prices.cloud, serial.prices.cloud);
  EXPECT_EQ(parallel.profits.edge, serial.profits.edge);
  EXPECT_EQ(parallel.profits.cloud, serial.profits.cloud);
  EXPECT_EQ(parallel.rounds, serial.rounds);
}

core::DynamicGameConfig dynamic_config() {
  core::DynamicGameConfig config;
  config.params = test_params();
  config.params.edge_capacity = 8.0;
  config.prices = {2.0, 1.0};
  config.budget = 12.0;
  config.edge_success = 0.5;
  return config;
}

TEST(ParallelDeterminism, MonteCarloSweepMatchesSerialBitwise) {
  const auto config = dynamic_config();
  const auto population = core::PopulationModel::around(10.0, 2.0);
  const core::MinerRequest own{2.0, 3.0};
  const core::MinerRequest others{1.8, 3.2};
  const auto serial = core::dynamic_miner_utility_monte_carlo(
      config, population, own, others, 20000, 777, 1);
  for (int threads : {2, 4}) {
    const auto parallel = core::dynamic_miner_utility_monte_carlo(
        config, population, own, others, 20000, 777, threads);
    EXPECT_EQ(parallel.estimate, serial.estimate) << "threads=" << threads;
    EXPECT_EQ(parallel.std_error, serial.std_error) << "threads=" << threads;
    EXPECT_EQ(parallel.samples, serial.samples);
  }
}

TEST(ParallelDeterminism, MonteCarloAgreesWithThePmfExpectation) {
  const auto config = dynamic_config();
  const auto population = core::PopulationModel::around(10.0, 2.0);
  const core::MinerRequest own{2.0, 3.0};
  const core::MinerRequest others{1.8, 3.2};
  const double exact =
      core::dynamic_miner_utility(config, population, own, others);
  const auto mc = core::dynamic_miner_utility_monte_carlo(
      config, population, own, others, 200000, 2024, 0);
  ASSERT_GT(mc.std_error, 0.0);
  EXPECT_NEAR(mc.estimate, exact, 4.0 * mc.std_error + 1e-9);
}

TEST(ParallelDeterminism, MonteCarloSeedChangesTheDraws) {
  const auto config = dynamic_config();
  const auto population = core::PopulationModel::around(10.0, 2.0);
  const core::MinerRequest own{2.0, 3.0};
  const auto a = core::dynamic_miner_utility_monte_carlo(
      config, population, own, own, 5000, 1, 0);
  const auto b = core::dynamic_miner_utility_monte_carlo(
      config, population, own, own, 5000, 2, 0);
  EXPECT_NE(a.estimate, b.estimate);
}

}  // namespace
}  // namespace hecmine
