// Tests for game/gnep and game/stackelberg on toys with known solutions.
#include <gtest/gtest.h>

#include <cmath>

#include "game/gnep.hpp"
#include "game/stackelberg.hpp"
#include "support/error.hpp"

namespace hecmine::game {
namespace {

// Toy jointly convex GNEP: player i maximizes -(x_i - t_i)^2 subject to
// x_i >= 0 and the shared cap x_1 + x_2 <= cap. The variational
// equilibrium shares one multiplier mu: x_i = max(t_i - mu/2, 0) with
// complementarity on the cap.
struct ToyGnep {
  double t1 = 3.0, t2 = 5.0;

  [[nodiscard]] PenalizedBestResponseFn oracle() const {
    return [*this](const Profile&, std::size_t player, double mu) {
      const double target = player == 0 ? t1 : t2;
      return std::vector<double>{std::max(0.0, target - 0.5 * mu)};
    };
  }

  [[nodiscard]] static SharedUsageFn usage() {
    return [](const Profile& profile) {
      return profile[0][0] + profile[1][0];
    };
  }
};

TEST(SharedPriceGnep, SlackCapGivesUnconstrainedOptima) {
  const ToyGnep toy;
  const auto result = solve_shared_price_gnep(toy.oracle(), ToyGnep::usage(),
                                              100.0, {{0.0}, {0.0}});
  ASSERT_TRUE(result.converged);
  EXPECT_FALSE(result.cap_active);
  EXPECT_DOUBLE_EQ(result.surcharge, 0.0);
  EXPECT_NEAR(result.profile[0][0], 3.0, 1e-8);
  EXPECT_NEAR(result.profile[1][0], 5.0, 1e-8);
}

TEST(SharedPriceGnep, BindingCapFindsVariationalEquilibrium) {
  // cap = 4: mu solves (t1 - mu/2) + (t2 - mu/2) = 4 -> mu = 4,
  // x = (1, 3).
  const ToyGnep toy;
  const auto result = solve_shared_price_gnep(toy.oracle(), ToyGnep::usage(),
                                              4.0, {{0.0}, {0.0}});
  ASSERT_TRUE(result.converged);
  EXPECT_TRUE(result.cap_active);
  EXPECT_NEAR(result.surcharge, 4.0, 1e-5);
  EXPECT_NEAR(result.profile[0][0], 1.0, 1e-5);
  EXPECT_NEAR(result.profile[1][0], 3.0, 1e-5);
  EXPECT_NEAR(result.shared_usage, 4.0, 1e-6);
}

TEST(SharedPriceGnep, CapTighterThanOnePlayersDemand) {
  // cap = 1: mu = (3 + 5 - 1) ... with both interior mu solves 8 - mu = 1,
  // mu = 7 -> x1 = max(3 - 3.5, 0) = 0, x2 = 5 - 3.5 = 1.5 > cap. The true
  // variational point has x1 = 0, x2 = 1, mu = 8.
  const ToyGnep toy;
  const auto result = solve_shared_price_gnep(toy.oracle(), ToyGnep::usage(),
                                              1.0, {{0.0}, {0.0}});
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.profile[0][0], 0.0, 1e-5);
  EXPECT_NEAR(result.profile[1][0], 1.0, 1e-5);
  EXPECT_NEAR(result.surcharge, 8.0, 1e-4);
}

TEST(SharedPriceGnep, ValidatesCap) {
  const ToyGnep toy;
  EXPECT_THROW((void)solve_shared_price_gnep(toy.oracle(), ToyGnep::usage(),
                                             -1.0, {{0.0}, {0.0}}),
               support::PreconditionError);
}

// Differentiated-price duopoly: V_i = a_i (10 - a_i + 0.5 a_j).
// Best response a_i = (10 + 0.5 a_j)/2; symmetric NE at a* = 20/3.
TEST(Stackelberg, FindsPriceDuopolyEquilibrium) {
  const LeaderPayoffFn payoff = [](const std::vector<double>& actions,
                                   std::size_t leader) {
    const double own = actions[leader];
    const double rival = actions[1 - leader];
    return own * (10.0 - own + 0.5 * rival);
  };
  const std::vector<ActionBounds> bounds{{0.0, 20.0}, {0.0, 20.0}};
  const auto result = solve_stackelberg(payoff, {1.0, 1.0}, bounds);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.actions[0], 20.0 / 3.0, 1e-3);
  EXPECT_NEAR(result.actions[1], 20.0 / 3.0, 1e-3);
  // Payoffs are reported at the final action profile.
  const double expected_payoff =
      (20.0 / 3.0) * (10.0 - 20.0 / 3.0 + 0.5 * 20.0 / 3.0);
  EXPECT_NEAR(result.payoffs[0], expected_payoff, 1e-2);
}

TEST(Stackelberg, SingleLeaderReducesToMaximization) {
  const LeaderPayoffFn payoff = [](const std::vector<double>& actions,
                                   std::size_t) {
    return -(actions[0] - 7.0) * (actions[0] - 7.0);
  };
  const auto result = solve_stackelberg(payoff, {0.0}, {{0.0, 20.0}});
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.actions[0], 7.0, 1e-4);
}

TEST(Stackelberg, ClampsStartAndFindsBoundaryOptimum) {
  const LeaderPayoffFn payoff = [](const std::vector<double>& actions,
                                   std::size_t) { return actions[0]; };
  const auto result = solve_stackelberg(payoff, {100.0}, {{0.0, 5.0}});
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.actions[0], 5.0, 1e-6);
}

TEST(Stackelberg, ValidatesBounds) {
  const LeaderPayoffFn payoff = [](const std::vector<double>&, std::size_t) {
    return 0.0;
  };
  EXPECT_THROW((void)solve_stackelberg(payoff, {0.0}, {{1.0, 1.0}}),
               support::PreconditionError);
  EXPECT_THROW((void)solve_stackelberg(payoff, {}, {}),
               support::PreconditionError);
  EXPECT_THROW((void)solve_stackelberg(payoff, {0.0}, {{0.0, 1.0}, {0.0, 1.0}}),
               support::PreconditionError);
}

}  // namespace
}  // namespace hecmine::game
