// Tests for the FollowerOracle layer (core/oracle.hpp): every oracle must
// agree with its underlying solver, the decorators must be transparent,
// and the dispatch helpers must pick the documented fast paths. Registered
// under the `oracle` ctest label so `ctest -L oracle` runs exactly the
// equivalence suite.
#include "core/oracle.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/equilibrium_cache.hpp"
#include "core/sp.hpp"
#include "support/error.hpp"

namespace hecmine::core {
namespace {

NetworkParams default_params() {
  NetworkParams params;
  params.reward = 100.0;
  params.fork_rate = 0.2;
  params.edge_success = 0.9;
  params.edge_capacity = 8.0;
  params.cost_edge = 1.0;
  params.cost_cloud = 0.4;
  return params;
}

SpSolveOptions fast_options() {
  SpSolveOptions options;
  options.grid_points = 12;
  options.max_rounds = 8;
  options.tolerance = 1e-3;
  return options;
}

TEST(EquilibriumProfileShape, SymmetricAccessorsMapEveryIndexToTheFront) {
  const NetworkParams params = default_params();
  const auto eq = SymmetricFollowerOracle(params, 40.0, 5,
                                          EdgeMode::kConnected)
                      .solve({2.0, 1.0});
  ASSERT_TRUE(eq.converged);
  EXPECT_TRUE(eq.symmetric);
  EXPECT_EQ(eq.miner_count, 5);
  ASSERT_EQ(eq.requests.size(), 1u);
  // Any miner index resolves to the shared entry.
  EXPECT_EQ(eq.request(0).edge, eq.request(4).edge);
  EXPECT_EQ(eq.utility(0), eq.utility(4));
  const auto profile = eq.expanded();
  ASSERT_EQ(profile.size(), 5u);
  EXPECT_EQ(profile.front().edge, profile.back().edge);
  // Totals are the n-fold replication of the shared request.
  EXPECT_NEAR(eq.totals.edge, 5.0 * eq.request().edge, 1e-12);
  EXPECT_NEAR(eq.totals.cloud, 5.0 * eq.request().cloud, 1e-12);
}

TEST(EquilibriumProfileShape, HeterogeneousAccessorsIndexPerMiner) {
  const NetworkParams params = default_params();
  const std::vector<double> budgets{20.0, 30.0, 40.0};
  const auto eq = ConnectedNepOracle(params, budgets).solve({2.0, 1.0});
  ASSERT_TRUE(eq.converged);
  EXPECT_FALSE(eq.symmetric);
  ASSERT_EQ(eq.requests.size(), 3u);
  ASSERT_EQ(eq.utilities.size(), 3u);
  EXPECT_EQ(eq.expanded().size(), 3u);
  // Richer miners buy more, so indexing is meaningful.
  EXPECT_GE(eq.request(2).total(), eq.request(0).total() - 1e-9);
  EXPECT_THROW((void)eq.request(3), support::PreconditionError);
}

TEST(OracleParity, SymmetricFastPathMatchesTheFullProfileNep) {
  // Homogeneous budgets: the O(1) symmetric fixed point and the O(n)
  // best-response NEP must land on the same equilibrium.
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  const std::vector<double> budgets(5, 40.0);
  const auto fast =
      SymmetricFollowerOracle(params, 40.0, 5, EdgeMode::kConnected)
          .solve(prices);
  const auto full = ConnectedNepOracle(params, budgets).solve(prices);
  ASSERT_TRUE(fast.converged);
  ASSERT_TRUE(full.converged);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(full.request(i).edge, fast.request().edge, 1e-3);
    EXPECT_NEAR(full.request(i).cloud, fast.request().cloud, 1e-3);
  }
  EXPECT_NEAR(full.totals.edge, fast.totals.edge, 5e-3);
  EXPECT_NEAR(full.totals.cloud, fast.totals.cloud, 5e-3);
  EXPECT_NEAR(full.utility(0), fast.utility(), 1e-3 * std::abs(fast.utility()) + 1e-4);
}

TEST(OracleParity, GnepSharedPriceAndViAgree) {
  // The two standalone algorithms are independent routes to the same
  // variational equilibrium (Theorem 5).
  const NetworkParams params = default_params();
  const Prices prices{2.2, 1.0};
  const std::vector<double> budgets{25.0, 35.0, 45.0};
  const auto shared =
      StandaloneGnepOracle(params, budgets, GnepAlgorithm::kSharedPrice)
          .solve(prices);
  const auto vi =
      StandaloneGnepOracle(params, budgets, GnepAlgorithm::kVi).solve(prices);
  ASSERT_TRUE(shared.converged);
  ASSERT_TRUE(vi.converged);
  EXPECT_EQ(shared.cap_active, vi.cap_active);
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    EXPECT_NEAR(vi.request(i).edge, shared.request(i).edge, 2e-2);
    EXPECT_NEAR(vi.request(i).cloud, shared.request(i).cloud, 2e-2);
  }
  EXPECT_NEAR(vi.totals.edge, shared.totals.edge, 3e-2);
  EXPECT_NEAR(vi.surcharge, shared.surcharge, 5e-2);
}

TEST(OracleEnvHash, SeparatesEnvironmentsAndIgnoresNothing) {
  const NetworkParams params = default_params();
  const std::vector<double> budgets{20.0, 30.0};
  const std::uint64_t base = ConnectedNepOracle(params, budgets).env_hash();
  // Same construction: same identity.
  EXPECT_EQ(ConnectedNepOracle(params, budgets).env_hash(), base);
  // Any non-price input shifts the hash.
  NetworkParams other = params;
  other.fork_rate = 0.3;
  EXPECT_NE(ConnectedNepOracle(other, budgets).env_hash(), base);
  EXPECT_NE(ConnectedNepOracle(params, {20.0, 31.0}).env_hash(), base);
  MinerSolveOptions tighter;
  tighter.tolerance = 1e-12;
  EXPECT_NE(ConnectedNepOracle(params, budgets, tighter).env_hash(), base);
  // The two standalone algorithms never share cache entries.
  EXPECT_NE(StandaloneGnepOracle(params, budgets, GnepAlgorithm::kSharedPrice)
                .env_hash(),
            StandaloneGnepOracle(params, budgets, GnepAlgorithm::kVi)
                .env_hash());
}

TEST(CachedOracle, IsBitwiseTransparentAtSnappedPrices) {
  // The decorator snaps prices to the cache quantum and delegates, so a
  // cached solve must equal the inner oracle evaluated at snap_prices().
  const NetworkParams params = default_params();
  FollowerEquilibriumCache cache;
  auto inner = std::make_unique<SymmetricFollowerOracle>(
      params, 40.0, 5, EdgeMode::kConnected);
  const SymmetricFollowerOracle reference(params, 40.0, 5,
                                          EdgeMode::kConnected);
  const CachedFollowerOracle cached(std::move(inner), cache);
  const Prices raw{2.000000037, 0.999999981};
  const auto via_cache = cached.solve(raw);
  const auto direct = reference.solve(cache.snap_prices(raw));
  EXPECT_EQ(via_cache.request().edge, direct.request().edge);    // bitwise
  EXPECT_EQ(via_cache.request().cloud, direct.request().cloud);  // bitwise
  EXPECT_EQ(via_cache.totals.edge, direct.totals.edge);
  EXPECT_EQ(via_cache.utility(), direct.utility());
}

TEST(CachedOracle, SecondSolveHitsAndPreservesTheAnswer) {
  const NetworkParams params = default_params();
  FollowerEquilibriumCache cache;
  const CachedFollowerOracle cached(
      std::make_unique<SymmetricFollowerOracle>(params, 40.0, 5,
                                                EdgeMode::kConnected),
      cache);
  const Prices prices{2.0, 1.0};
  const auto first = cached.solve(prices);
  const auto second = cached.solve(prices);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(second.request().edge, first.request().edge);
  EXPECT_EQ(second.totals.cloud, first.totals.cloud);
  // The decorator forwards identity and shape queries to the inner oracle.
  EXPECT_EQ(cached.env_hash(), cached.inner().env_hash());
  EXPECT_EQ(cached.miner_count(), 5);
  EXPECT_EQ(cached.mode(), EdgeMode::kConnected);
}

TEST(MakeFollowerOracle, DispatchesTheDocumentedFastPaths) {
  const NetworkParams params = default_params();
  // Equal budgets: symmetric fast path.
  EXPECT_TRUE(dynamic_cast<SymmetricFollowerOracle*>(
      make_follower_oracle(params, {40.0, 40.0, 40.0}, EdgeMode::kConnected)
          .get()));
  // Heterogeneous: the mode picks the profile oracle.
  EXPECT_TRUE(dynamic_cast<ConnectedNepOracle*>(
      make_follower_oracle(params, {20.0, 30.0}, EdgeMode::kConnected).get()));
  EXPECT_TRUE(dynamic_cast<StandaloneGnepOracle*>(
      make_follower_oracle(params, {20.0, 30.0}, EdgeMode::kStandalone)
          .get()));
  // A single miner cannot play the symmetric game.
  EXPECT_TRUE(dynamic_cast<ConnectedNepOracle*>(
      make_follower_oracle(params, {40.0}, EdgeMode::kConnected).get()));
  // Degenerate zero budgets skip the fast path (it needs budget > 0).
  EXPECT_TRUE(dynamic_cast<ConnectedNepOracle*>(
      make_follower_oracle(params, {0.0, 0.0}, EdgeMode::kConnected).get()));
  // A context cache layers the decorator on top.
  FollowerEquilibriumCache cache;
  SolveContext context;
  context.cache = &cache;
  EXPECT_TRUE(dynamic_cast<CachedFollowerOracle*>(
      make_follower_oracle(params, {40.0, 40.0}, EdgeMode::kConnected, context)
          .get()));
}

TEST(SolveFollowers, AutoDispatchMatchesTheExplicitSymmetricCall) {
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  const auto dispatched =
      solve_followers(params, prices, {40.0, 40.0, 40.0, 40.0, 40.0},
                      EdgeMode::kConnected);
  const auto explicit_symmetric =
      solve_followers_symmetric(params, prices, 40.0, 5, EdgeMode::kConnected);
  EXPECT_TRUE(dispatched.symmetric);
  EXPECT_EQ(dispatched.request().edge, explicit_symmetric.request().edge);
  EXPECT_EQ(dispatched.request().cloud, explicit_symmetric.request().cloud);
  EXPECT_EQ(dispatched.totals.edge, explicit_symmetric.totals.edge);
}

TEST(LeaderStage, AutoDispatchAgreesWithTheForcedProfileOracle) {
  // solve_leader_stage on equal budgets takes the symmetric fast path; the
  // force_profile_oracle hook pins the full NEP. Both must find the same
  // leader equilibrium (this is the refactor's core parity claim).
  const NetworkParams params = default_params();
  const std::vector<double> budgets(3, 30.0);
  SpSolveOptions options = fast_options();
  // The parity claim is about the equilibrium, not the last digit of the
  // follower fixed point; a loose inner tolerance keeps the profile-oracle
  // reaction scans affordable.
  options.context.follower.tolerance = 1e-6;
  options.context.follower.max_iterations = 800;
  const auto fast =
      solve_leader_stage(params, budgets, EdgeMode::kConnected, options);
  options.force_profile_oracle = true;
  const auto full =
      solve_leader_stage(params, budgets, EdgeMode::kConnected, options);
  // Both paths must converge — here via the shared Theorem 4 sequential
  // fallback, because this price game cycles under simultaneous moves.
  ASSERT_TRUE(fast.converged);
  ASSERT_TRUE(full.converged);
  EXPECT_EQ(fast.method, full.method);
  EXPECT_TRUE(fast.followers.symmetric);
  EXPECT_FALSE(full.followers.symmetric);
  EXPECT_NEAR(full.prices.edge, fast.prices.edge,
              0.05 * fast.prices.edge + 1e-3);
  EXPECT_NEAR(full.prices.cloud, fast.prices.cloud,
              0.05 * fast.prices.cloud + 1e-3);
  const double fast_welfare = fast.profits.edge + fast.profits.cloud;
  const double full_welfare = full.profits.edge + full.profits.cloud;
  EXPECT_NEAR(full_welfare, fast_welfare, 0.03 * std::abs(fast_welfare));
  EXPECT_NEAR(full.followers.totals.grand(), fast.followers.totals.grand(),
              0.05 * fast.followers.totals.grand());
}

TEST(DeprecatedShims, ReproduceTheLeaderStageResultsExactly) {
  // The shims are thin delegations: same inputs, bitwise-equal outputs in
  // the legacy result shapes.
  const NetworkParams params = default_params();
  const auto options = fast_options();
  const auto modern = solve_leader_stage_homogeneous(
      params, 40.0, 5, EdgeMode::kConnected, options);
  const auto shim = solve_sp_equilibrium_homogeneous(
      params, 40.0, 5, EdgeMode::kConnected, options);
  EXPECT_EQ(shim.prices.edge, modern.prices.edge);
  EXPECT_EQ(shim.prices.cloud, modern.prices.cloud);
  EXPECT_EQ(shim.profits.edge, modern.profits.edge);
  EXPECT_EQ(shim.follower.request.edge, modern.followers.request().edge);
  EXPECT_EQ(shim.rounds, modern.rounds);

  const std::vector<double> budgets{20.0, 30.0, 40.0};
  // Bitwise shim parity is about delegation, not convergence — skip the
  // (expensive) sequential fallback of the cycling heterogeneous game.
  SpSolveOptions hetero = options;
  hetero.sequential_fallback = false;
  hetero.context.follower.tolerance = 1e-6;
  const auto modern_full =
      solve_leader_stage(params, budgets, EdgeMode::kConnected, hetero);
  const auto shim_full =
      solve_sp_equilibrium(params, budgets, EdgeMode::kConnected, hetero);
  EXPECT_EQ(shim_full.prices.edge, modern_full.prices.edge);
  EXPECT_EQ(shim_full.prices.cloud, modern_full.prices.cloud);
  ASSERT_EQ(shim_full.followers.requests.size(), 3u);
  EXPECT_EQ(shim_full.followers.requests[1].edge,
            modern_full.followers.request(1).edge);
}

TEST(DeprecatedShims, ResolvedContextMergesLegacyFieldsOverTheContext) {
  FollowerEquilibriumCache cache;
  SpSolveOptions options;
  options.context.threads = 2;
  options.context.follower.tolerance = 1e-7;
  // Legacy fields still set by old call sites win over the context.
  options.threads = 3;
  options.cache = &cache;
  options.follower.tolerance = 1e-5;
  const SolveContext resolved = options.resolved_context();
  EXPECT_EQ(resolved.threads, 3);
  EXPECT_EQ(resolved.cache, &cache);
  EXPECT_DOUBLE_EQ(resolved.follower.tolerance, 1e-5);
  // Untouched legacy fields defer to the context.
  SpSolveOptions modern;
  modern.context.threads = 4;
  modern.context.follower.tolerance = 1e-7;
  const SolveContext kept = modern.resolved_context();
  EXPECT_EQ(kept.threads, 4);
  EXPECT_DOUBLE_EQ(kept.follower.tolerance, 1e-7);
}

TEST(Exploitability, ProfileOverloadCertifiesOracleEquilibria) {
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  const std::vector<double> budgets{25.0, 35.0, 45.0};
  const auto connected = ConnectedNepOracle(params, budgets).solve(prices);
  EXPECT_LT(miner_exploitability(params, prices, budgets, connected,
                                 EdgeMode::kConnected),
            1e-4);
  const auto standalone = StandaloneGnepOracle(params, budgets).solve(prices);
  EXPECT_LT(miner_exploitability(params, prices, budgets, standalone,
                                 EdgeMode::kStandalone),
            1e-3);
  // The symmetric shape accepts a single shared budget entry.
  const auto symmetric =
      solve_followers_symmetric(params, prices, 40.0, 5, EdgeMode::kConnected);
  EXPECT_LT(miner_exploitability(params, prices, {40.0}, symmetric,
                                 EdgeMode::kConnected),
            1e-4);
}

TEST(PopulationOracle, IsDeterministicInTheContextRngRoot) {
  const NetworkParams params = default_params();
  const PopulationModel population = PopulationModel::around(10.0, 2.0);
  SolveContext context;
  context.rng_root = 42;
  const PopulationExpectationOracle oracle(params, 12.0, population,
                                           EdgeMode::kConnected, 64, context);
  const auto first = oracle.solve({2.0, 1.0});
  const auto second = oracle.solve({2.0, 1.0});
  EXPECT_EQ(first.request().edge, second.request().edge);  // bitwise
  EXPECT_EQ(first.totals.edge, second.totals.edge);
  EXPECT_EQ(first.utility(), second.utility());
  EXPECT_TRUE(first.symmetric);
  EXPECT_GE(oracle.miner_count(), 2);
  // The sample count is part of the oracle's cacheable identity.
  const PopulationExpectationOracle more_samples(
      params, 12.0, population, EdgeMode::kConnected, 128, context);
  EXPECT_NE(more_samples.env_hash(), oracle.env_hash());
}

}  // namespace
}  // namespace hecmine::core
