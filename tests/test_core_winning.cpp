// Tests for core/winning (paper Section III) — formula identities,
// Theorem 1, degenerate pools, and the paper's qualitative claims.
#include "core/winning.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace hecmine::core {
namespace {

std::vector<MinerRequest> random_profile(support::Rng& rng, std::size_t n) {
  std::vector<MinerRequest> requests(n);
  for (auto& request : requests) {
    request.edge = rng.uniform(0.0, 10.0);
    request.cloud = rng.uniform(0.0, 10.0);
  }
  return requests;
}

TEST(WinProbFull, MatchesEquation6OnHandExample) {
  // Two miners: r_1 = (2, 1), r_2 = (1, 3); E = 3, C = 4, S = 7.
  const std::vector<MinerRequest> profile{{2.0, 1.0}, {1.0, 3.0}};
  const Totals totals = aggregate(profile);
  const double beta = 0.25;
  // Eq. (6): (e+c)/S + beta (e C - c E)/(E S)
  const double expected_1 =
      3.0 / 7.0 + beta * (2.0 * 4.0 - 1.0 * 3.0) / (3.0 * 7.0);
  EXPECT_NEAR(win_prob_full(profile[0], totals, beta), expected_1, 1e-15);
  const double expected_2 =
      4.0 / 7.0 + beta * (1.0 * 4.0 - 3.0 * 3.0) / (3.0 * 7.0);
  EXPECT_NEAR(win_prob_full(profile[1], totals, beta), expected_2, 1e-15);
}

TEST(WinProbFull, EqualsReducedForm) {
  // Algebraic identity: W^h = (1-beta)(e+c)/S + beta e/E.
  support::Rng rng{11};
  for (int trial = 0; trial < 200; ++trial) {
    const auto profile = random_profile(rng, 2 + rng.uniform_index(6));
    const Totals totals = aggregate(profile);
    if (totals.edge <= 1e-9) continue;
    const double beta = rng.uniform(0.0, 0.95);
    for (const auto& request : profile) {
      const double reduced =
          (1.0 - beta) * request.total() / totals.grand() +
          beta * request.edge / totals.edge;
      EXPECT_NEAR(win_prob_full(request, totals, beta), reduced, 1e-12);
    }
  }
}

TEST(WinProbFull, SplitsIntoEdgeAndCloudParts) {
  support::Rng rng{12};
  for (int trial = 0; trial < 100; ++trial) {
    const auto profile = random_profile(rng, 3);
    const Totals totals = aggregate(profile);
    const double beta = rng.uniform(0.0, 0.9);
    for (const auto& request : profile) {
      EXPECT_NEAR(win_prob_full(request, totals, beta),
                  win_prob_edge_part(request, totals, beta) +
                      win_prob_cloud_part(request, totals, beta),
                  1e-13);
    }
  }
}

// Theorem 1 as a property test over profile sizes.
class Theorem1Test : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Theorem1Test, WinningProbabilitiesSumToOne) {
  support::Rng rng{13 + GetParam()};
  for (int trial = 0; trial < 50; ++trial) {
    const auto profile = random_profile(rng, GetParam());
    const double beta = rng.uniform(0.0, 0.95);
    EXPECT_NEAR(total_win_probability(profile, beta), 1.0, 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(ProfileSizes, Theorem1Test,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 16u, 64u));

TEST(Theorem1, HoldsInAllEdgeOrAllCloudNetworks) {
  const double beta = 0.3;
  const std::vector<MinerRequest> all_edge{{2.0, 0.0}, {3.0, 0.0}};
  EXPECT_NEAR(total_win_probability(all_edge, beta), 1.0, 1e-12);
  const std::vector<MinerRequest> all_cloud{{0.0, 2.0}, {0.0, 3.0}};
  EXPECT_NEAR(total_win_probability(all_cloud, beta), 1.0, 1e-12);
}

TEST(WinProb, ProbabilitiesLieInUnitInterval) {
  support::Rng rng{14};
  for (int trial = 0; trial < 300; ++trial) {
    const auto profile = random_profile(rng, 2 + rng.uniform_index(5));
    const Totals totals = aggregate(profile);
    const double beta = rng.uniform(0.0, 0.95);
    for (const auto& request : profile) {
      const double w = win_prob_full(request, totals, beta);
      EXPECT_GE(w, -1e-12);
      EXPECT_LE(w, 1.0 + 1e-12);
    }
  }
}

TEST(WinProbConnectedFailure, MatchesEquation7) {
  const std::vector<MinerRequest> profile{{2.0, 1.0}, {1.0, 3.0}};
  const Totals totals = aggregate(profile);
  const double beta = 0.25;
  EXPECT_NEAR(win_prob_connected_failure(profile[0], totals, beta),
              (1.0 - beta) * 3.0 / 7.0, 1e-15);
}

TEST(WinProbStandaloneRejection, MatchesEquation8) {
  const std::vector<MinerRequest> profile{{2.0, 1.0}, {1.0, 3.0}};
  const Totals totals = aggregate(profile);
  const double beta = 0.25;
  // Rejected miner keeps only c_i = 1 out of a pool of S - e_i = 5.
  EXPECT_NEAR(win_prob_standalone_rejection(profile[0], totals, beta),
              (1.0 - beta) * 1.0 / 5.0, 1e-15);
}

TEST(WinProbConnected, IsTheLawOfTotalExpectation) {
  support::Rng rng{15};
  for (int trial = 0; trial < 200; ++trial) {
    const auto profile = random_profile(rng, 4);
    const Totals totals = aggregate(profile);
    const double beta = rng.uniform(0.0, 0.9);
    const double h = rng.uniform(0.05, 1.0);
    for (const auto& request : profile) {
      const double mixture =
          h * win_prob_full(request, totals, beta) +
          (1.0 - h) * win_prob_connected_failure(request, totals, beta);
      EXPECT_NEAR(win_prob_connected(request, totals, beta, h), mixture,
                  1e-12);
    }
  }
}

TEST(WinProbConnected, ReducesToFullSatisfactionAtHEqualOne) {
  const std::vector<MinerRequest> profile{{2.0, 1.0}, {1.0, 3.0}};
  const Totals totals = aggregate(profile);
  EXPECT_NEAR(win_prob_connected(profile[0], totals, 0.3, 1.0),
              win_prob_full(profile[0], totals, 0.3), 1e-15);
  EXPECT_NEAR(win_prob_standalone(profile[0], totals, 0.3),
              win_prob_full(profile[0], totals, 0.3), 1e-15);
}

TEST(WinProb, EdgeUnitsBeatCloudUnitsUnderForks) {
  // Same total demand, one miner edge-heavy, one cloud-heavy: the
  // edge-heavy miner must have the higher winning probability when beta>0.
  const std::vector<MinerRequest> profile{{4.0, 1.0}, {1.0, 4.0}};
  const Totals totals = aggregate(profile);
  EXPECT_GT(win_prob_full(profile[0], totals, 0.3),
            win_prob_full(profile[1], totals, 0.3));
  // Without forks the split is irrelevant.
  EXPECT_NEAR(win_prob_full(profile[0], totals, 0.0),
              win_prob_full(profile[1], totals, 0.0), 1e-15);
}

TEST(WinProb, MonotoneInOwnEdgeRequest) {
  const double beta = 0.3;
  double previous = 0.0;
  for (double e = 0.5; e < 6.0; e += 0.5) {
    const std::vector<MinerRequest> profile{{e, 1.0}, {2.0, 2.0}};
    const Totals totals = aggregate(profile);
    const double w = win_prob_full(profile[0], totals, beta);
    EXPECT_GT(w, previous);
    previous = w;
  }
}

TEST(WinProb, EmptyNetworkAndValidation) {
  const Totals empty{};
  EXPECT_DOUBLE_EQ(win_prob_full({0.0, 0.0}, empty, 0.2), 0.0);
  EXPECT_THROW((void)win_prob_full({-1.0, 0.0}, empty, 0.2),
               support::PreconditionError);
  EXPECT_THROW((void)win_prob_full({1.0, 0.0}, {1.0, 0.0}, 1.0),
               support::PreconditionError);
  EXPECT_THROW(
      (void)win_prob_connected({1.0, 0.0}, {1.0, 0.0}, 0.2, 0.0),
      support::PreconditionError);
}

TEST(WinProb, ProfileOverloadMatchesManualTotals) {
  const std::vector<MinerRequest> profile{{2.0, 1.0}, {1.0, 3.0}};
  const Totals totals = aggregate(profile);
  EXPECT_DOUBLE_EQ(win_prob_connected(profile, 1, 0.2, 0.8),
                   win_prob_connected(profile[1], totals, 0.2, 0.8));
  EXPECT_THROW((void)win_prob_connected(profile, 5, 0.2, 0.8),
               support::PreconditionError);
}

TEST(Aggregate, SumsAndExcludes) {
  const std::vector<MinerRequest> profile{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const Totals totals = aggregate(profile);
  EXPECT_DOUBLE_EQ(totals.edge, 9.0);
  EXPECT_DOUBLE_EQ(totals.cloud, 12.0);
  EXPECT_DOUBLE_EQ(totals.grand(), 21.0);
  const Totals others = aggregate_excluding(profile, 1);
  EXPECT_DOUBLE_EQ(others.edge, 6.0);
  EXPECT_DOUBLE_EQ(others.cloud, 8.0);
  EXPECT_THROW((void)aggregate_excluding(profile, 3),
               support::PreconditionError);
}

TEST(ForkModelSupport, RequestCostIsLinear) {
  EXPECT_DOUBLE_EQ(request_cost({2.0, 3.0}, {1.5, 0.5}), 4.5);
}

}  // namespace
}  // namespace hecmine::core
