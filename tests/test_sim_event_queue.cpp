// Tests for the discrete-event kernel.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace hecmine::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue queue;
  std::vector<int> fired;
  queue.schedule_at(3.0, [&] { fired.push_back(3); });
  queue.schedule_at(1.0, [&] { fired.push_back(1); });
  queue.schedule_at(2.0, [&] { fired.push_back(2); });
  EXPECT_EQ(queue.run(), 3u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue queue;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i)
    queue.schedule_at(1.0, [&, i] { fired.push_back(i); });
  (void)queue.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, HandlersMayScheduleMoreEvents) {
  EventQueue queue;
  std::vector<double> times;
  // A self-rescheduling ticker.
  std::function<void()> tick = [&] {
    times.push_back(queue.now());
    if (times.size() < 4) queue.schedule_in(0.5, tick);
  };
  queue.schedule_at(0.0, tick);
  (void)queue.run();
  ASSERT_EQ(times.size(), 4u);
  EXPECT_DOUBLE_EQ(times[3], 1.5);
}

TEST(EventQueue, RunUntilRespectsHorizon) {
  EventQueue queue;
  int fired = 0;
  queue.schedule_at(1.0, [&] { ++fired; });
  queue.schedule_at(2.0, [&] { ++fired; });
  queue.schedule_at(5.0, [&] { ++fired; });
  EXPECT_EQ(queue.run_until(2.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(queue.now(), 2.0);
  EXPECT_EQ(queue.pending(), 1u);
  EXPECT_EQ(queue.run_until(10.0), 1u);
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunUntilAdvancesClockToHorizonWhenIdle) {
  EventQueue queue;
  EXPECT_EQ(queue.run_until(7.5), 0u);
  EXPECT_DOUBLE_EQ(queue.now(), 7.5);
}

TEST(EventQueue, MaxEventsBudget) {
  EventQueue queue;
  int fired = 0;
  for (int i = 0; i < 10; ++i)
    queue.schedule_at(static_cast<double>(i), [&] { ++fired; });
  EXPECT_EQ(queue.run(4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(queue.pending(), 6u);
}

TEST(EventQueue, SameTimestampPopsStayFifoAtScale) {
  EventQueue queue;
  std::vector<int> fired;
  // Many events on few distinct timestamps: within each timestamp the pop
  // order must be exactly the insertion order, however deep the heap got.
  constexpr int kEvents = 1000;
  for (int i = 0; i < kEvents; ++i) {
    const double when = static_cast<double>(i % 7);
    queue.schedule_at(when, [&fired, i] { fired.push_back(i); });
  }
  EXPECT_EQ(queue.run(), static_cast<std::size_t>(kEvents));
  ASSERT_EQ(fired.size(), static_cast<std::size_t>(kEvents));
  for (std::size_t i = 1; i < fired.size(); ++i) {
    if (fired[i - 1] % 7 == fired[i] % 7) {
      EXPECT_LT(fired[i - 1], fired[i]) << "FIFO violated at pop " << i;
    }
  }
}

TEST(EventQueue, CountsProcessedAndDepthWatermark) {
  EventQueue queue;
  for (int i = 0; i < 6; ++i)
    queue.schedule_at(static_cast<double>(i), [] {});
  EXPECT_EQ(queue.max_pending(), 6u);
  EXPECT_EQ(queue.processed(), 0u);
  (void)queue.run(2);
  EXPECT_EQ(queue.processed(), 2u);
  // The watermark is a lifetime high-water mark, not the current depth.
  (void)queue.run();
  EXPECT_EQ(queue.processed(), 6u);
  EXPECT_EQ(queue.max_pending(), 6u);
  queue.schedule_at(queue.now() + 1.0, [] {});
  EXPECT_EQ(queue.max_pending(), 6u);
}

/// Drives a seeded self-rescheduling workload on `queue` and returns the
/// exact (time, id) firing sequence. `sink` indirection lets a snapshot
/// replay record into its own trace while sharing the handlers.
std::vector<std::pair<double, int>> drain_workload(
    EventQueue& queue, std::vector<std::pair<double, int>>*& sink) {
  std::vector<std::pair<double, int>> trace;
  sink = &trace;
  (void)queue.run();
  return trace;
}

TEST(EventQueue, IdenticalWorkloadsReplayBitwiseIdenticalSequences) {
  // Two queues fed the same seeded workload must fire the same events at
  // bitwise-identical times in the same order — the determinism contract
  // the campaign.queue_* gauges and the trace exports rely on.
  std::vector<std::pair<double, int>>* sink = nullptr;
  const auto build = [&sink](EventQueue& queue) {
    support::Rng rng{20260808};
    for (int i = 0; i < 200; ++i) {
      const double when = rng.uniform(0.0, 50.0);
      queue.schedule_at(when, [&sink, i, when] {
        sink->push_back({when, i});
      });
    }
  };
  EventQueue first, second;
  build(first);
  build(second);
  const auto trace_first = drain_workload(first, sink);
  const auto trace_second = drain_workload(second, sink);
  ASSERT_EQ(trace_first.size(), trace_second.size());
  for (std::size_t i = 0; i < trace_first.size(); ++i) {
    EXPECT_EQ(trace_first[i].second, trace_second[i].second);
    // Bitwise, not approximate: the kernel must not perturb timestamps.
    EXPECT_EQ(trace_first[i].first, trace_second[i].first);
  }
  EXPECT_EQ(first.processed(), second.processed());
  EXPECT_EQ(first.max_pending(), second.max_pending());
}

TEST(EventQueue, SnapshotRestoreReplaysTheRemainingSequence) {
  std::vector<std::pair<double, int>>* sink = nullptr;
  EventQueue queue;
  support::Rng rng{7};
  for (int i = 0; i < 64; ++i) {
    const double when = rng.uniform(0.0, 10.0);
    queue.schedule_at(when, [&sink, i, when] {
      sink->push_back({when, i});
    });
  }
  // Drain half, snapshot by copy, drain the rest on the original.
  std::vector<std::pair<double, int>> head;
  sink = &head;
  (void)queue.run(32);
  const EventQueue snapshot = queue;
  EXPECT_EQ(snapshot.pending(), queue.pending());
  EXPECT_EQ(snapshot.processed(), queue.processed());
  EXPECT_DOUBLE_EQ(snapshot.now(), queue.now());
  std::vector<std::pair<double, int>> tail_original;
  sink = &tail_original;
  (void)queue.run();
  // Restoring the snapshot replays the exact remaining sequence.
  EventQueue restored = snapshot;
  std::vector<std::pair<double, int>> tail_restored;
  sink = &tail_restored;
  (void)restored.run();
  ASSERT_EQ(tail_original.size(), 32u);
  ASSERT_EQ(tail_restored, tail_original);
  EXPECT_EQ(restored.processed(), queue.processed());
  EXPECT_EQ(restored.max_pending(), queue.max_pending());
}

TEST(EventQueue, RejectsPastAndEmptyHandlers) {
  EventQueue queue;
  queue.schedule_at(5.0, [] {});
  (void)queue.run();
  EXPECT_THROW(queue.schedule_at(1.0, [] {}), support::PreconditionError);
  EXPECT_THROW(queue.schedule_in(-1.0, [] {}), support::PreconditionError);
  EXPECT_THROW(queue.schedule_in(1.0, nullptr), support::PreconditionError);
}

}  // namespace
}  // namespace hecmine::sim
