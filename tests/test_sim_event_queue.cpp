// Tests for the discrete-event kernel.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/error.hpp"

namespace hecmine::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue queue;
  std::vector<int> fired;
  queue.schedule_at(3.0, [&] { fired.push_back(3); });
  queue.schedule_at(1.0, [&] { fired.push_back(1); });
  queue.schedule_at(2.0, [&] { fired.push_back(2); });
  EXPECT_EQ(queue.run(), 3u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue queue;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i)
    queue.schedule_at(1.0, [&, i] { fired.push_back(i); });
  (void)queue.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, HandlersMayScheduleMoreEvents) {
  EventQueue queue;
  std::vector<double> times;
  // A self-rescheduling ticker.
  std::function<void()> tick = [&] {
    times.push_back(queue.now());
    if (times.size() < 4) queue.schedule_in(0.5, tick);
  };
  queue.schedule_at(0.0, tick);
  (void)queue.run();
  ASSERT_EQ(times.size(), 4u);
  EXPECT_DOUBLE_EQ(times[3], 1.5);
}

TEST(EventQueue, RunUntilRespectsHorizon) {
  EventQueue queue;
  int fired = 0;
  queue.schedule_at(1.0, [&] { ++fired; });
  queue.schedule_at(2.0, [&] { ++fired; });
  queue.schedule_at(5.0, [&] { ++fired; });
  EXPECT_EQ(queue.run_until(2.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(queue.now(), 2.0);
  EXPECT_EQ(queue.pending(), 1u);
  EXPECT_EQ(queue.run_until(10.0), 1u);
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunUntilAdvancesClockToHorizonWhenIdle) {
  EventQueue queue;
  EXPECT_EQ(queue.run_until(7.5), 0u);
  EXPECT_DOUBLE_EQ(queue.now(), 7.5);
}

TEST(EventQueue, MaxEventsBudget) {
  EventQueue queue;
  int fired = 0;
  for (int i = 0; i < 10; ++i)
    queue.schedule_at(static_cast<double>(i), [&] { ++fired; });
  EXPECT_EQ(queue.run(4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(queue.pending(), 6u);
}

TEST(EventQueue, RejectsPastAndEmptyHandlers) {
  EventQueue queue;
  queue.schedule_at(5.0, [] {});
  (void)queue.run();
  EXPECT_THROW(queue.schedule_at(1.0, [] {}), support::PreconditionError);
  EXPECT_THROW(queue.schedule_in(-1.0, [] {}), support::PreconditionError);
  EXPECT_THROW(queue.schedule_in(1.0, nullptr), support::PreconditionError);
}

}  // namespace
}  // namespace hecmine::sim
