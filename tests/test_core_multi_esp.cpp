// Tests for the multi-ESP competition extension and the QuantileSketch.
#include <gtest/gtest.h>

#include <cmath>

#include "core/multi_esp.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace hecmine {
namespace {

core::NetworkParams default_params() {
  core::NetworkParams params;
  params.reward = 100.0;
  params.fork_rate = 0.2;
  params.edge_success = 0.9;
  params.edge_capacity = 50.0;
  params.cost_edge = 1.0;
  params.cost_cloud = 0.4;
  return params;
}

TEST(MultiEsp, BertrandCollapsesEdgePriceToCost) {
  const auto eq =
      core::solve_multi_esp_bertrand(default_params(), 200.0, 5, 2);
  EXPECT_NEAR(eq.price_edge, 1.0, 0.01);
  EXPECT_GT(eq.price_cloud, 0.4);
  EXPECT_LT(eq.price_cloud, eq.price_edge);
  // At ~cost pricing the pooled ESPs earn ~nothing.
  EXPECT_LT(eq.profit_edge_total, 0.1);
  EXPECT_GT(eq.follower.request().edge, 0.0);
}

TEST(MultiEsp, CompetitionInflatesEdgeDemand) {
  // Cheap edge units: miners buy far more edge than under the monopoly.
  const core::NetworkParams params = default_params();
  const auto competitive =
      core::solve_multi_esp_bertrand(params, 200.0, 5, 3);
  core::SpSolveOptions options;
  options.grid_points = 24;
  options.max_rounds = 25;
  const auto monopoly = core::solve_leader_stage_homogeneous(
      params, 200.0, 5, core::EdgeMode::kConnected, options);
  EXPECT_GT(competitive.follower.request().edge,
            monopoly.followers.request().edge);
}

TEST(MultiEsp, PremiumReportQuantifiesTheMonopolyRents) {
  const core::NetworkParams params = default_params();
  core::SpSolveOptions options;
  options.grid_points = 24;
  options.max_rounds = 25;
  const auto report =
      core::edge_premium_under_competition(params, 200.0, 5, 2, options);
  // The paper's monopoly ESP prices several times above cost.
  EXPECT_GT(report.price_ratio, 2.0);
  EXPECT_GT(report.profit_ratio, 5.0);
}

TEST(MultiEsp, Validates) {
  const core::NetworkParams params = default_params();
  EXPECT_THROW((void)core::solve_multi_esp_bertrand(params, 0.0, 5, 2),
               support::PreconditionError);
  EXPECT_THROW((void)core::solve_multi_esp_bertrand(params, 10.0, 1, 2),
               support::PreconditionError);
  EXPECT_THROW((void)core::solve_multi_esp_bertrand(params, 10.0, 5, 1),
               support::PreconditionError);
}

TEST(QuantileSketch, ExactQuantilesOfKnownData) {
  support::QuantileSketch sketch;
  for (double x : {5.0, 1.0, 3.0, 2.0, 4.0}) sketch.add(x);
  EXPECT_DOUBLE_EQ(sketch.median(), 3.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(sketch.iqr(), 2.0);
}

TEST(QuantileSketch, InterpolatesBetweenOrderStatistics) {
  support::QuantileSketch sketch;
  sketch.add(0.0);
  sketch.add(10.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.9), 9.0);
}

TEST(QuantileSketch, UniformSamplesMatchTheLaw) {
  support::Rng rng{81};
  support::QuantileSketch sketch;
  for (int i = 0; i < 100000; ++i) sketch.add(rng.uniform());
  EXPECT_NEAR(sketch.median(), 0.5, 0.01);
  EXPECT_NEAR(sketch.quantile(0.9), 0.9, 0.01);
  EXPECT_NEAR(sketch.iqr(), 0.5, 0.01);
}

TEST(QuantileSketch, SupportsInterleavedAddAndQuery) {
  support::QuantileSketch sketch;
  sketch.add(1.0);
  EXPECT_DOUBLE_EQ(sketch.median(), 1.0);
  sketch.add(3.0);
  EXPECT_DOUBLE_EQ(sketch.median(), 2.0);
  sketch.add(2.0);
  EXPECT_DOUBLE_EQ(sketch.median(), 2.0);
}

TEST(QuantileSketch, Validates) {
  support::QuantileSketch sketch;
  EXPECT_THROW((void)sketch.median(), support::PreconditionError);
  sketch.add(1.0);
  EXPECT_THROW((void)sketch.quantile(1.5), support::PreconditionError);
}

}  // namespace
}  // namespace hecmine
