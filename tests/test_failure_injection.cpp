// Failure injection and determinism: errors from embedded callbacks must
// propagate cleanly (no corrupted state, no swallowed exceptions), I/O
// failures must throw, and every stochastic component must be bit-stable
// under a fixed seed.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/oracle.hpp"
#include "game/nash.hpp"
#include "game/stackelberg.hpp"
#include "net/campaign.hpp"
#include "net/network.hpp"
#include "rl/trainer.hpp"
#include "sim/event_queue.hpp"
#include "support/error.hpp"
#include "support/table.hpp"

namespace hecmine {
namespace {

TEST(FailureInjection, ThrowingBestResponsePropagates) {
  int calls = 0;
  const game::BestResponseFn oracle = [&](const game::Profile&,
                                          std::size_t) -> std::vector<double> {
    if (++calls >= 3) throw std::runtime_error("oracle exploded");
    return {1.0};
  };
  EXPECT_THROW((void)game::solve_best_response(oracle, {{0.0}, {0.0}}),
               std::runtime_error);
}

TEST(FailureInjection, ThrowingLeaderPayoffPropagates) {
  const game::LeaderPayoffFn payoff = [](const std::vector<double>&,
                                         std::size_t) -> double {
    throw std::runtime_error("payoff exploded");
  };
  EXPECT_THROW(
      (void)game::solve_stackelberg(payoff, {0.5}, {{0.0, 1.0}}),
      std::runtime_error);
}

TEST(FailureInjection, ThrowingEventHandlerLeavesQueueUsable) {
  sim::EventQueue queue;
  queue.schedule_at(1.0, [] { throw std::runtime_error("boom"); });
  queue.schedule_at(2.0, [] {});
  EXPECT_THROW((void)queue.run(), std::runtime_error);
  // The failing event was consumed; the rest still runs.
  EXPECT_EQ(queue.pending(), 1u);
  EXPECT_EQ(queue.run(), 1u);
  EXPECT_DOUBLE_EQ(queue.now(), 2.0);
}

TEST(FailureInjection, CsvWriteToUnwritablePathThrows) {
  support::Table table({"x"});
  table.add_row({1.0});
  EXPECT_THROW(table.write_csv("/proc/definitely/not/writable.csv"),
               std::exception);
}

TEST(FailureInjection, AllZeroRequestsAreHandledEndToEnd) {
  core::NetworkParams params;
  net::EdgePolicy policy{core::EdgeMode::kConnected, 0.9, 10.0};
  net::MiningNetwork network(params, policy, {2.0, 1.0}, 7);
  const std::vector<core::MinerRequest> profile{{0.0, 0.0}, {0.0, 0.0}};
  network.run_rounds(profile, 100);
  EXPECT_EQ(network.stats().rounds, 100u);
  EXPECT_EQ(network.stats().wins[0] + network.stats().wins[1], 0u);
  EXPECT_DOUBLE_EQ(network.stats().revenue_edge, 0.0);
  EXPECT_EQ(network.ledger().height(), 0u);  // nobody ever mined
}

TEST(FailureInjection, ZeroBudgetsYieldTheEmptyEquilibrium) {
  core::NetworkParams params;
  const auto eq = core::solve_followers(params, {2.0, 1.0}, {0.0, 0.0},
                                        core::EdgeMode::kConnected);
  EXPECT_NEAR(eq.totals.grand(), 0.0, 1e-9);
  for (double u : eq.utilities) EXPECT_DOUBLE_EQ(u, 0.0);
}

TEST(Determinism, CampaignIsBitStableUnderSeed) {
  net::CampaignConfig config;
  config.params.reward = 100.0;
  config.policy = {core::EdgeMode::kConnected, 0.9, 10.0};
  config.prices = {2.0, 1.0};
  config.blocks = 2000;
  const std::vector<core::MinerRequest> strategies{{1.0, 2.0}, {2.0, 1.0}};
  const auto a = run_campaign(config, strategies, 99);
  const auto b = run_campaign(config, strategies, 99);
  for (std::size_t i = 0; i < strategies.size(); ++i) {
    EXPECT_EQ(a.miners[i].wins, b.miners[i].wins);
    EXPECT_DOUBLE_EQ(a.miners[i].income, b.miners[i].income);
  }
  EXPECT_EQ(a.forks, b.forks);
  const auto c = run_campaign(config, strategies, 100);
  EXPECT_NE(a.miners[0].wins, c.miners[0].wins);  // seed actually matters
}

TEST(Determinism, TrainerIsBitStableUnderSeed) {
  core::NetworkParams params;
  params.reward = 100.0;
  const core::PopulationModel population(3.0, 0.0, 1, 3);
  rl::TrainerConfig config;
  config.blocks = 500;
  config.edge_steps = 7;
  config.cloud_steps = 7;
  const auto a =
      rl::train_miners(params, {2.0, 1.0}, 10.0, population, config, 5);
  const auto b =
      rl::train_miners(params, {2.0, 1.0}, 10.0, population, config, 5);
  EXPECT_DOUBLE_EQ(a.mean.edge, b.mean.edge);
  EXPECT_DOUBLE_EQ(a.mean.cloud, b.mean.cloud);
}

TEST(Determinism, SolversAreDeterministicWithoutSeeds) {
  // Purely numerical paths must be exactly reproducible call to call.
  core::NetworkParams params;
  params.reward = 100.0;
  const std::vector<double> budgets{20.0, 35.0};
  const auto a = core::solve_followers(params, {2.0, 1.0}, budgets,
                                       core::EdgeMode::kStandalone);
  const auto b = core::solve_followers(params, {2.0, 1.0}, budgets,
                                       core::EdgeMode::kStandalone);
  EXPECT_DOUBLE_EQ(a.requests[0].edge, b.requests[0].edge);
  EXPECT_DOUBLE_EQ(a.surcharge, b.surcharge);
}

}  // namespace
}  // namespace hecmine
