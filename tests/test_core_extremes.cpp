// Extreme-parameter and invariance tests: limits of the model (no forks,
// heavy forks, near-degenerate prices, large n) and scaling symmetries
// the equilibrium must respect.
#include <gtest/gtest.h>

#include <cmath>

#include "core/closed_forms.hpp"
#include "core/oracle.hpp"
#include "core/winning.hpp"
#include "support/error.hpp"

namespace hecmine::core {
namespace {

NetworkParams base_params() {
  NetworkParams params;
  params.reward = 100.0;
  params.fork_rate = 0.2;
  params.edge_success = 0.9;
  params.edge_capacity = 50.0;
  return params;
}

TEST(Extremes, NoForksMakesEdgeWorthless) {
  // beta = 0: the edge has no latency advantage, so with P_e > P_c nobody
  // buys edge units.
  NetworkParams params = base_params();
  params.fork_rate = 0.0;
  const auto eq = solve_followers_symmetric(params, {2.0, 1.0}, 100.0, 5,
                                            EdgeMode::kConnected);
  ASSERT_TRUE(eq.converged);
  EXPECT_NEAR(eq.request().edge, 0.0, 1e-7);
  EXPECT_GT(eq.request().cloud, 0.0);
}

TEST(Extremes, HeavyForksPushEverythingToTheEdge) {
  // beta near 1: cloud blocks are almost always orphaned, so cloud demand
  // stays a small share even at a large price gap.
  NetworkParams params = base_params();
  params.fork_rate = 0.95;
  const auto eq = solve_followers_symmetric(params, {4.0, 1.0}, 1e5, 5,
                                            EdgeMode::kConnected);
  ASSERT_TRUE(eq.converged);
  EXPECT_GT(eq.request().edge, 0.0);
  const double cloud_share =
      eq.request().cloud / std::max(eq.request().total(), 1e-12);
  EXPECT_LT(cloud_share, 0.35);
}

TEST(Extremes, NearEqualPricesAreEdgeOnly) {
  // P_e barely above P_c: the beta h bonus makes edge strictly better.
  const NetworkParams params = base_params();
  const auto eq = solve_followers_symmetric(params, {1.0 + 1e-6, 1.0}, 100.0,
                                            5, EdgeMode::kConnected);
  ASSERT_TRUE(eq.converged);
  EXPECT_NEAR(eq.request().cloud, 0.0, 1e-6);
}

TEST(Extremes, LargeNApproachesFullDissipation) {
  // Tullock limit: per-miner spend ~ R(n-1)(1-beta+h beta)/n^2 -> total
  // spend -> R(1-beta+h beta).
  const NetworkParams params = base_params();
  const Prices prices{2.0, 1.0};
  const int n = 60;
  const auto eq =
      solve_followers_symmetric(params, prices, 1e6, n, EdgeMode::kConnected);
  ASSERT_TRUE(eq.converged);
  const double total_spend =
      n * request_cost(eq.request(), prices);
  const double limit =
      params.reward * (1.0 - 0.2 + 0.9 * 0.2) * (n - 1.0) / n;
  EXPECT_NEAR(total_spend, limit, 1e-3 * limit);
}

TEST(Extremes, TwoMinersMatchClosedForm) {
  const NetworkParams params = base_params();
  const Prices prices{2.0, 1.0};
  const auto eq =
      solve_followers_symmetric(params, prices, 1e6, 2, EdgeMode::kConnected);
  const auto closed = homogeneous_sufficient_request(params, prices, 2);
  EXPECT_NEAR(eq.request().edge, closed.edge, 1e-7);
  EXPECT_NEAR(eq.request().cloud, closed.cloud, 1e-7);
}

TEST(Invariance, RewardScalesSufficientRequestsLinearly) {
  const Prices prices{2.0, 1.0};
  NetworkParams params = base_params();
  const auto base = homogeneous_sufficient_request(params, prices, 5);
  params.reward *= 3.0;
  const auto scaled = homogeneous_sufficient_request(params, prices, 5);
  EXPECT_NEAR(scaled.edge, 3.0 * base.edge, 1e-10);
  EXPECT_NEAR(scaled.cloud, 3.0 * base.cloud, 1e-10);
}

TEST(Invariance, JointPriceBudgetScalingLeavesRequestsUnchanged) {
  // (P_e, P_c, B) -> (k P_e, k P_c, k B) is a pure unit change of money:
  // the binding equilibrium requests are invariant.
  const NetworkParams params = base_params();
  const double k = 3.7;
  const auto base =
      homogeneous_binding_request(params, {2.0, 1.0}, 8.0, 5);
  const auto scaled =
      homogeneous_binding_request(params, {2.0 * k, 1.0 * k}, 8.0 * k, 5);
  EXPECT_NEAR(scaled.edge, base.edge, 1e-10);
  EXPECT_NEAR(scaled.cloud, base.cloud, 1e-10);
}

TEST(Invariance, JointRewardPriceScalingLeavesSufficientRequestsUnchanged) {
  // Scaling R and both prices by k cancels in the FOCs.
  NetworkParams params = base_params();
  const auto base = homogeneous_sufficient_request(params, {2.0, 1.0}, 5);
  params.reward *= 2.5;
  const auto scaled =
      homogeneous_sufficient_request(params, {5.0, 2.5}, 5);
  EXPECT_NEAR(scaled.edge, base.edge, 1e-10);
  EXPECT_NEAR(scaled.cloud, base.cloud, 1e-10);
}

TEST(Invariance, MinerPermutationLeavesEquilibriumSetUnchanged) {
  const NetworkParams params = base_params();
  const Prices prices{2.0, 1.0};
  const std::vector<double> budgets{7.0, 11.0, 15.0};
  const std::vector<double> permuted{15.0, 7.0, 11.0};
  const auto eq_a =
      solve_followers(params, prices, budgets, EdgeMode::kConnected);
  const auto eq_b =
      solve_followers(params, prices, permuted, EdgeMode::kConnected);
  ASSERT_TRUE(eq_a.converged);
  ASSERT_TRUE(eq_b.converged);
  // Same budgets -> same requests, wherever they sit in the vector.
  EXPECT_NEAR(eq_a.requests[0].edge, eq_b.requests[1].edge, 1e-6);
  EXPECT_NEAR(eq_a.requests[1].cloud, eq_b.requests[2].cloud, 1e-6);
  EXPECT_NEAR(eq_a.requests[2].total(), eq_b.requests[0].total(), 1e-6);
}

TEST(Extremes, TinyCapacityStillYieldsAValidGnep) {
  NetworkParams params = base_params();
  params.edge_capacity = 0.05;
  const Prices prices{2.0, 1.0};
  const std::vector<double> budgets{30.0, 40.0};
  const auto eq =
      solve_followers(params, prices, budgets, EdgeMode::kStandalone);
  ASSERT_TRUE(eq.converged);
  EXPECT_TRUE(eq.cap_active);
  EXPECT_LE(eq.totals.edge, params.edge_capacity * (1.0 + 1e-6));
  EXPECT_GT(eq.surcharge, 0.0);
  EXPECT_GT(eq.totals.cloud, 0.0);
}

TEST(Extremes, WinningProbabilityStableUnderHugeAsymmetry) {
  // One whale vs a dust miner: probabilities remain valid and ordered.
  const std::vector<MinerRequest> profile{{1e6, 1e6}, {1e-6, 1e-6}};
  const Totals totals = aggregate(profile);
  const double w_whale = win_prob_full(profile[0], totals, 0.3);
  const double w_dust = win_prob_full(profile[1], totals, 0.3);
  EXPECT_NEAR(w_whale + w_dust, 1.0, 1e-9);
  EXPECT_GT(w_whale, 0.999);
  EXPECT_GT(w_dust, 0.0);
}

}  // namespace
}  // namespace hecmine::core
