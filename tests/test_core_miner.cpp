// Tests for core/miner: utilities, gradients, and the best response
// cross-validated against independent oracles (finite differences,
// projected gradient ascent, the paper's Eq. (15) multiplier form).
#include "core/miner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "numerics/pga.hpp"
#include "numerics/projection.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace hecmine::core {
namespace {

MinerEnv default_env() {
  MinerEnv env;
  env.reward = 100.0;
  env.fork_rate = 0.2;
  env.edge_success = 0.9;
  env.prices = {2.0, 1.0};
  env.budget = 50.0;
  env.others = {10.0, 20.0};
  return env;
}

TEST(MinerUtility, MatchesHandComputation) {
  MinerEnv env = default_env();
  const MinerRequest own{3.0, 4.0};
  // S = 30 + 7 = 37, E = 13.
  const double win = (1.0 - 0.2) * 7.0 / 37.0 + 0.2 * 0.9 * 3.0 / 13.0;
  const double expected = 100.0 * win - (2.0 * 3.0 + 1.0 * 4.0);
  EXPECT_NEAR(miner_utility(env, own), expected, 1e-12);
}

TEST(MinerUtility, PenalizedSubtractsSurcharge) {
  MinerEnv env = default_env();
  env.edge_surcharge = 0.5;
  const MinerRequest own{3.0, 4.0};
  EXPECT_NEAR(miner_penalized_utility(env, own),
              miner_utility(env, own) - 0.5 * 3.0, 1e-12);
}

TEST(MinerUtility, ZeroRequestCostsNothing) {
  MinerEnv env = default_env();
  EXPECT_DOUBLE_EQ(miner_utility(env, {0.0, 0.0}), 0.0);
}

TEST(MinerUtility, ValidatesInputs) {
  MinerEnv env = default_env();
  EXPECT_THROW((void)miner_utility(env, {-1.0, 0.0}),
               support::PreconditionError);
  env.prices.edge = 0.0;
  EXPECT_THROW(env.validate(), support::PreconditionError);
}

TEST(MinerGradient, MatchesFiniteDifferences) {
  support::Rng rng{21};
  for (int trial = 0; trial < 100; ++trial) {
    MinerEnv env = default_env();
    env.fork_rate = rng.uniform(0.0, 0.9);
    env.edge_success = rng.uniform(0.1, 1.0);
    env.others = {rng.uniform(0.5, 30.0), rng.uniform(0.5, 30.0)};
    env.edge_surcharge = rng.uniform(0.0, 1.0);
    const MinerRequest own{rng.uniform(0.1, 10.0), rng.uniform(0.1, 10.0)};
    const auto [du_de, du_dc] = miner_utility_gradient(env, own);
    const double step = 1e-6;
    const double fd_e = (miner_penalized_utility(env, {own.edge + step, own.cloud}) -
                         miner_penalized_utility(env, {own.edge - step, own.cloud})) /
                        (2.0 * step);
    const double fd_c = (miner_penalized_utility(env, {own.edge, own.cloud + step}) -
                         miner_penalized_utility(env, {own.edge, own.cloud - step})) /
                        (2.0 * step);
    EXPECT_NEAR(du_de, fd_e, 1e-5 * (1.0 + std::abs(fd_e)));
    EXPECT_NEAR(du_dc, fd_c, 1e-5 * (1.0 + std::abs(fd_c)));
  }
}

TEST(MinerInteriorPoint, SatisfiesFirstOrderConditions) {
  MinerEnv env = default_env();
  env.budget = 1e9;  // interior: budget never binds
  const MinerRequest interior = miner_interior_point(env);
  ASSERT_GT(interior.edge, 0.0);
  ASSERT_GT(interior.cloud, 0.0);
  const auto [du_de, du_dc] = miner_utility_gradient(env, interior);
  EXPECT_NEAR(du_de, 0.0, 1e-9);
  EXPECT_NEAR(du_dc, 0.0, 1e-9);
}

TEST(MinerInteriorPoint, ValidatesPriceGapAndOpponents) {
  MinerEnv env = default_env();
  env.prices = {1.0, 2.0};  // P_e < P_c
  EXPECT_THROW((void)miner_interior_point(env), support::PreconditionError);
  env = default_env();
  env.others = {0.0, 5.0};
  EXPECT_THROW((void)miner_interior_point(env), support::PreconditionError);
}

TEST(MinerBestResponse, UnconstrainedMatchesInteriorPoint) {
  MinerEnv env = default_env();
  env.budget = 1e9;
  const MinerRequest best = miner_best_response(env);
  const MinerRequest interior = miner_interior_point(env);
  EXPECT_NEAR(best.edge, interior.edge, 1e-8);
  EXPECT_NEAR(best.cloud, interior.cloud, 1e-8);
}

TEST(MinerBestResponse, RespectsBudget) {
  support::Rng rng{22};
  for (int trial = 0; trial < 100; ++trial) {
    MinerEnv env = default_env();
    env.budget = rng.uniform(0.5, 20.0);
    env.others = {rng.uniform(0.5, 40.0), rng.uniform(0.5, 40.0)};
    const MinerRequest best = miner_best_response(env);
    EXPECT_LE(request_cost(best, env.prices), env.budget + 1e-7);
    EXPECT_GE(best.edge, 0.0);
    EXPECT_GE(best.cloud, 0.0);
  }
}

TEST(MinerBestResponse, BindingBudgetSatisfiesEq15Multiplier) {
  // With a small budget the optimum exhausts it, and the multiplier of the
  // paper's Eq. (15) reproduces the same (e, c) through Eq. (14).
  MinerEnv env = default_env();
  env.budget = 10.0;
  const MinerRequest best = miner_best_response(env);
  ASSERT_NEAR(request_cost(best, env.prices), env.budget, 1e-6);
  ASSERT_GT(best.edge, 1e-6);
  ASSERT_GT(best.cloud, 1e-6);
  const double beta = env.fork_rate, h = env.edge_success, r = env.reward;
  const double pe = env.prices.edge, pc = env.prices.cloud;
  const double sigma1 = std::sqrt(h * beta * r / (pe - pc));
  const double sigma2 = std::sqrt((1.0 - beta) * r / pc);
  const double e_others = env.others.edge;
  const double s_others = env.others.grand();
  const double sqrt_one_plus_lambda =
      ((pe - pc) * sigma1 * std::sqrt(e_others) +
       pc * sigma2 * std::sqrt(s_others)) /
      (env.budget + (pe - pc) * e_others + pc * s_others);
  ASSERT_GT(sqrt_one_plus_lambda, 1.0);  // budget truly binds
  const double e_total = sigma1 * std::sqrt(e_others) / sqrt_one_plus_lambda;
  const double s_total = sigma2 * std::sqrt(s_others) / sqrt_one_plus_lambda;
  EXPECT_NEAR(best.edge, e_total - e_others, 1e-5);
  EXPECT_NEAR(best.cloud, s_total - s_others - best.edge, 1e-5);
}

TEST(MinerBestResponse, AgreesWithProjectedGradientAscent) {
  support::Rng rng{23};
  for (int trial = 0; trial < 60; ++trial) {
    MinerEnv env = default_env();
    env.fork_rate = rng.uniform(0.05, 0.8);
    env.edge_success = rng.uniform(0.2, 1.0);
    env.prices = {rng.uniform(0.5, 4.0), rng.uniform(0.2, 2.0)};
    env.budget = rng.uniform(2.0, 80.0);
    env.edge_surcharge = rng.bernoulli(0.3) ? rng.uniform(0.0, 1.0) : 0.0;
    env.others = {rng.uniform(1.0, 30.0), rng.uniform(1.0, 30.0)};
    const MinerRequest best = miner_best_response(env);

    const std::vector<double> price_vec{env.prices.edge, env.prices.cloud};
    const auto project = [&](const std::vector<double>& x) {
      return num::project_budget_set(x, price_vec, env.budget);
    };
    const auto objective = [&](const std::vector<double>& x) {
      // Clamp: the finite-difference probe may dip epsilon below zero.
      return miner_penalized_utility(
          env, {std::max(x[0], 0.0), std::max(x[1], 0.0)});
    };
    num::PgaOptions options;
    options.tolerance = 1e-12;
    options.max_iterations = 40000;
    options.initial_step = 0.05;
    const auto pga = num::projected_gradient_ascent(
        objective, nullptr, project, {best.edge + 0.1, best.cloud + 0.1},
        options);
    const double u_best = miner_penalized_utility(env, best);
    // The closed-form/segment-search best response must not be worse than
    // an independent numerical maximizer (small slack for PGA precision).
    EXPECT_GE(u_best, pga.value - 1e-5 * (1.0 + std::abs(pga.value)));
  }
}

TEST(MinerBestResponse, CloudDominatedWhenEdgeCheaper) {
  MinerEnv env = default_env();
  env.prices = {0.5, 1.0};  // edge strictly cheaper -> no reason to buy cloud
  const MinerRequest best = miner_best_response(env);
  EXPECT_GT(best.edge, 0.0);
  EXPECT_NEAR(best.cloud, 0.0, 1e-9);
}

TEST(MinerBestResponse, HugeEdgePriceGapPushesToCloudOnly) {
  MinerEnv env = default_env();
  env.prices = {500.0, 1.0};
  const MinerRequest best = miner_best_response(env);
  EXPECT_NEAR(best.edge, 0.0, 1e-7);
  EXPECT_GT(best.cloud, 0.0);
}

TEST(MinerBestResponse, ZeroBudgetGivesZeroRequest) {
  MinerEnv env = default_env();
  env.budget = 0.0;
  const MinerRequest best = miner_best_response(env);
  EXPECT_DOUBLE_EQ(best.edge, 0.0);
  EXPECT_DOUBLE_EQ(best.cloud, 0.0);
}

TEST(MinerBestResponse, DegenerateOpponentsGetEpsilonProbe) {
  MinerEnv env = default_env();
  env.others = {0.0, 0.0};
  const MinerRequest best = miner_best_response(env);
  EXPECT_GT(best.edge, 0.0);
  EXPECT_LE(best.edge, 1e-6 + 1e-12);
}

TEST(MinerBestResponse, SurchargeReducesEdgeDemand) {
  MinerEnv with_surcharge = default_env();
  with_surcharge.edge_surcharge = 1.0;
  const MinerRequest penalized = miner_best_response(with_surcharge);
  const MinerRequest free = miner_best_response(default_env());
  EXPECT_LT(penalized.edge, free.edge);
}

}  // namespace
}  // namespace hecmine::core
