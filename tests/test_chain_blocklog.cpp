// Tests for the hecmine.blocklog.v1 streaming writer and its simulator
// hook: header/reference/record/summary round-trips through the JSON
// parser, the stride and share-cap policies, and MiningSimulator emission.
#include "chain/blocklog.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chain/simulator.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/provenance.hpp"

namespace hecmine::chain {
namespace {

namespace json = support::json;

std::vector<json::Value> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return json::parse_lines(buffer.str());
}

TEST(BlockLog, HeaderCarriesSchemaAndManifest) {
  const std::string path = testing::TempDir() + "/hecmine_blocklog_hdr.jsonl";
  const support::provenance::RunManifest manifest =
      support::provenance::collect();
  { BlockLogWriter log(path, &manifest); }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].at("schema").as_string(), kBlockLogSchema);
  ASSERT_TRUE(lines[0].contains("manifest"));
  EXPECT_TRUE(lines[0].at("manifest").contains("git_sha"));
}

TEST(BlockLog, RecordReferenceAndSummaryRoundTrip) {
  const std::string path = testing::TempDir() + "/hecmine_blocklog_rt.jsonl";
  {
    BlockLogWriter log(path);
    log.write_reference("standalone", 0.2, 1.0,
                        {{1.5, 0.5}, {0.0, 2.0}});
    BlockRecord record;
    record.round = 0;
    record.height = 1;
    record.winner = 1;
    record.via_edge = false;
    record.fork = true;
    record.steal = false;
    record.interval = 0.75;
    record.sim_time = 0.75;
    record.fork_rate = 0.2;
    record.difficulty = 1.25;
    record.unit_rate = 0.8;
    record.active = 2;
    record.edge_units = 1.5;
    record.cloud_units = 2.5;
    record.p_fork = 0.125;
    record.p_winner = 0.6;
    const std::vector<std::size_t> ids{0, 3};
    const std::vector<Allocation> granted{{1.5, 0.5}, {0.0, 2.0}};
    log.append(record, &ids, &granted);
    EXPECT_EQ(log.records(), 1u);
    BlockLogSummary summary;
    summary.rounds = 1;
    summary.blocks = 1;
    summary.forks = 1;
    summary.fork_expected = 0.125;
    summary.fork_variance = 0.125 * 0.875;
    summary.has_reference = true;
    BlockLogMinerSummary miner;
    miner.miner = 3;
    miner.wins = 1;
    miner.rounds = 1;
    miner.expected = 0.55;
    miner.variance = 0.55 * 0.45;
    miner.expected_ref = 0.5;
    miner.variance_ref = 0.25;
    summary.miners.push_back(miner);
    log.write_summary(summary);
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 4u);  // header, reference, record, summary

  const json::Value& reference = lines[1];
  EXPECT_EQ(reference.at("kind").as_string(), "reference");
  EXPECT_EQ(reference.at("mode").as_string(), "standalone");
  EXPECT_DOUBLE_EQ(reference.at("fork_rate").as_number(), 0.2);
  ASSERT_EQ(reference.at("requests").as_array().size(), 2u);
  EXPECT_DOUBLE_EQ(
      reference.at("requests").as_array()[0].as_array()[0].as_number(), 1.5);

  const json::Value& record = lines[2];
  EXPECT_DOUBLE_EQ(record.at("round").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(record.at("winner").as_number(), 1.0);
  EXPECT_TRUE(record.at("fork").as_bool());
  EXPECT_FALSE(record.at("steal").as_bool());
  EXPECT_DOUBLE_EQ(record.at("difficulty").as_number(), 1.25);
  EXPECT_DOUBLE_EQ(record.at("p_winner").as_number(), 0.6);
  ASSERT_TRUE(record.contains("shares"));
  const json::Value::Array& shares = record.at("shares").as_array();
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_DOUBLE_EQ(shares[1].as_array()[0].as_number(), 3.0);
  EXPECT_DOUBLE_EQ(shares[1].as_array()[2].as_number(), 2.0);

  const json::Value& summary = lines[3];
  EXPECT_EQ(summary.at("kind").as_string(), "summary");
  EXPECT_TRUE(summary.at("has_reference").as_bool());
  ASSERT_EQ(summary.at("miners").as_array().size(), 1u);
  const json::Value& miner = summary.at("miners").as_array()[0];
  EXPECT_DOUBLE_EQ(miner.at("miner").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(miner.at("expected_ref").as_number(), 0.5);
}

TEST(BlockLog, StrideKeepsEveryNthRoundAndShareCapElidesShares) {
  const std::string path = testing::TempDir() + "/hecmine_blocklog_str.jsonl";
  {
    BlockLogWriter::Options options;
    options.stride = 3;
    options.max_share_miners = 1;
    BlockLogWriter log(path, nullptr, options);
    const std::vector<std::size_t> ids{0, 1};
    const std::vector<Allocation> granted{{1.0, 0.0}, {0.0, 1.0}};
    for (std::uint64_t round = 0; round < 10; ++round) {
      BlockRecord record;
      record.round = round;
      log.append(record, &ids, &granted);
    }
    EXPECT_EQ(log.records(), 4u);  // rounds 0, 3, 6, 9
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 5u);  // header + 4 records
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_DOUBLE_EQ(lines[i].at("round").as_number(),
                     static_cast<double>((i - 1) * 3));
    // Two active miners exceed the one-miner share cap: no shares field.
    EXPECT_FALSE(lines[i].contains("shares"));
  }
}

TEST(BlockLog, RejectsZeroStride) {
  BlockLogWriter::Options options;
  options.stride = 0;
  EXPECT_THROW(BlockLogWriter(testing::TempDir() + "/hecmine_blocklog_z.jsonl",
                              nullptr, options),
               support::PreconditionError);
}

TEST(BlockLog, MiningSimulatorStreamsRecordsWithSimTime) {
  const std::string path = testing::TempDir() + "/hecmine_blocklog_sim.jsonl";
  constexpr std::size_t kRounds = 32;
  {
    BlockLogWriter log(path);
    RaceConfig config;
    config.fork_rate = 0.2;
    MiningSimulator simulator(config, 11);
    simulator.set_block_log(&log);
    const std::vector<Allocation> allocations{{1.0, 0.0}, {0.0, 1.0}};
    for (std::size_t round = 0; round < kRounds; ++round)
      (void)simulator.step(allocations);
    EXPECT_EQ(simulator.rounds(), kRounds);
    EXPECT_GT(simulator.sim_time(), 0.0);
    EXPECT_EQ(log.records(), kRounds);
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u + kRounds);
  double previous_sim_time = 0.0;
  std::uint64_t previous_height = 0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const json::Value& record = lines[i];
    EXPECT_DOUBLE_EQ(record.at("round").as_number(),
                     static_cast<double>(i - 1));
    // The sim clock accumulates monotonically; heights never decrease.
    EXPECT_GE(record.at("sim_time").as_number(), previous_sim_time);
    previous_sim_time = record.at("sim_time").as_number();
    const auto height =
        static_cast<std::uint64_t>(record.at("height").as_number());
    EXPECT_GE(height, previous_height);
    previous_height = height;
    EXPECT_DOUBLE_EQ(record.at("fork_rate").as_number(), 0.2);
    // Both miners always active with unit allocations.
    ASSERT_TRUE(record.contains("shares"));
    EXPECT_EQ(record.at("shares").as_array().size(), 2u);
    // The winner's sampler probability follows Eq. 6 with E=C=1, S=2:
    // edge winner (1-beta)/2 + beta, cloud winner (1-beta)/2.
    const double p = record.at("p_winner").as_number();
    if (record.at("via_edge").as_bool())
      EXPECT_DOUBLE_EQ(p, 0.4 + 0.2);
    else
      EXPECT_DOUBLE_EQ(p, 0.4);
  }
}

}  // namespace
}  // namespace hecmine::chain
