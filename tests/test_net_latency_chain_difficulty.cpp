// Tests for net/latency (the standalone resend penalty) and
// chain/difficulty (windowed retargeting).
#include <gtest/gtest.h>

#include <cmath>

#include "chain/difficulty.hpp"
#include "chain/simulator.hpp"
#include "net/latency.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace hecmine {
namespace {

TEST(LatencyModel, PlacementLatenciesFollowTheLegs) {
  net::LatencyModel model;
  model.miner_edge = 0.05;
  model.edge_cloud = 1.0;
  model.miner_cloud = 1.2;
  model.admission_epoch = 0.5;
  EXPECT_DOUBLE_EQ(model.edge_placement_latency(net::ServiceStatus::kServed),
                   0.05);
  EXPECT_DOUBLE_EQ(
      model.edge_placement_latency(net::ServiceStatus::kTransferred), 1.05);
  EXPECT_DOUBLE_EQ(
      model.edge_placement_latency(net::ServiceStatus::kRejected),
      2.0 * 0.05 + 0.5 + 1.2);
  EXPECT_DOUBLE_EQ(model.cloud_placement_latency(), 1.2);
}

TEST(LatencyModel, Validates) {
  net::LatencyModel model;
  model.miner_edge = -1.0;
  EXPECT_THROW(model.validate(), support::PreconditionError);
}

TEST(LatencyStats, StandaloneResendIsSlowerThanConnectedTransfer) {
  // The paper's prose claim (Sec. I): a rejected-then-resent request takes
  // considerably longer than an automatic transfer. Force failures in both
  // modes and compare the mean edge-placement latencies.
  const std::vector<core::MinerRequest> profile{{2.0, 1.0}, {2.0, 1.0}};
  net::LatencyModel model;
  model.miner_edge = 0.02;
  model.edge_cloud = 1.0;
  model.miner_cloud = 1.0;
  model.admission_epoch = 0.5;

  net::EdgePolicy connected{core::EdgeMode::kConnected, 0.5, 10.0};
  net::EdgePolicy standalone{core::EdgeMode::kStandalone, 0.5, 2.0};
  const auto stats_connected =
      net::estimate_latency_stats(profile, connected, model, 20000, 1);
  const auto stats_standalone =
      net::estimate_latency_stats(profile, standalone, model, 20000, 2);
  // Both modes fail roughly half the edge requests here (h = 0.5; capacity
  // admits exactly one of the two identical requests).
  EXPECT_GT(stats_connected.failures, 15000u);
  EXPECT_GT(stats_standalone.failures, 15000u);
  EXPECT_GT(stats_standalone.mean_edge_placement,
            stats_connected.mean_edge_placement);
}

TEST(LatencyStats, AllServedMeansBaseLatency) {
  const std::vector<core::MinerRequest> profile{{1.0, 1.0}};
  net::LatencyModel model;
  model.miner_edge = 0.1;
  net::EdgePolicy policy{core::EdgeMode::kStandalone, 1.0, 10.0};
  const auto stats = net::estimate_latency_stats(profile, policy, model, 100, 3);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_NEAR(stats.mean_edge_placement, 0.1, 1e-12);
}

TEST(Difficulty, ValidatesConfig) {
  chain::DifficultyController::Config config;
  config.target_interval = 0.0;
  EXPECT_THROW(chain::DifficultyController{config},
               support::PreconditionError);
  config = {};
  config.max_adjustment = 1.0;
  EXPECT_THROW(chain::DifficultyController{config},
               support::PreconditionError);
}

TEST(Difficulty, RetargetsTowardTargetInterval) {
  // Doubled hash power must end up with ~halved per-unit rate so the
  // interval returns to target. The proportional retarget rule makes the
  // rate a noisy estimator with lognormal spread ~1/sqrt(window) per
  // retarget, so track the *time-average* rate over many retargets.
  chain::DifficultyController::Config config;
  config.target_interval = 1.0;
  config.window = 64;
  chain::DifficultyController controller(config);
  support::Rng rng{5};
  const double total_power = 2.0;  // blocks come 2x too fast at rate 1
  support::Accumulator rates;
  for (int block = 0; block < 64000; ++block) {
    const double solve_time =
        rng.exponential(total_power * controller.unit_hash_rate());
    controller.observe_block(solve_time);
    if (block > 1000) rates.add(controller.unit_hash_rate());
  }
  EXPECT_GT(controller.retargets(), 500u);
  EXPECT_NEAR(rates.mean(), 0.5, 0.05);
}

TEST(Difficulty, ClampsExtremeAdjustments) {
  chain::DifficultyController::Config config;
  config.target_interval = 1.0;
  config.window = 4;
  config.max_adjustment = 4.0;
  chain::DifficultyController controller(config);
  // Absurdly fast blocks: one retarget may shrink the rate by at most 4x.
  for (int block = 0; block < 4; ++block) controller.observe_block(1e-9);
  EXPECT_NEAR(controller.unit_hash_rate(), 0.25, 1e-12);
}

TEST(Difficulty, StabilizesIntervalThroughPowerSwings) {
  // End-to-end with the race: power doubles midway; after re-convergence
  // the mean interval is back near target.
  chain::DifficultyController::Config config;
  config.target_interval = 0.5;
  config.window = 16;
  chain::DifficultyController controller(config);
  support::Rng rng{6};
  auto run_phase = [&](double power, int blocks) {
    support::Accumulator tail_intervals;
    for (int b = 0; b < blocks; ++b) {
      const double t = rng.exponential(power * controller.unit_hash_rate());
      controller.observe_block(t);
      if (b >= blocks / 2) tail_intervals.add(t);
    }
    return tail_intervals.mean();
  };
  const double phase1 = run_phase(1.0, 4000);
  const double phase2 = run_phase(2.0, 4000);
  EXPECT_NEAR(phase1, 0.5, 0.1);
  EXPECT_NEAR(phase2, 0.5, 0.1);
}

}  // namespace
}  // namespace hecmine
