// Tests for core/sp: SP profits, the leader-stage equilibria (Algorithms 1
// and 2), the CSP reaction curve (Theorem 4 structure), and the paper's
// cross-mode claims.
#include "core/sp.hpp"

#include "core/oracle.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/closed_forms.hpp"
#include "support/error.hpp"

namespace hecmine::core {
namespace {

NetworkParams default_params() {
  NetworkParams params;
  params.reward = 100.0;
  params.fork_rate = 0.2;
  params.edge_success = 0.9;
  params.edge_capacity = 8.0;
  params.cost_edge = 1.0;
  params.cost_cloud = 0.4;
  return params;
}

SpSolveOptions fast_options() {
  SpSolveOptions options;
  options.grid_points = 28;
  options.max_rounds = 40;
  options.tolerance = 1e-4;
  options.follower.tolerance = 1e-8;
  return options;
}

TEST(SpProfits, MatchesDefinition) {
  const NetworkParams params = default_params();
  const SpProfits profits = sp_profits(params, {2.0, 1.0}, {10.0, 20.0});
  EXPECT_DOUBLE_EQ(profits.edge, (2.0 - 1.0) * 10.0);
  EXPECT_DOUBLE_EQ(profits.cloud, (1.0 - 0.4) * 20.0);
}

TEST(HomogeneousStackelberg, ConnectedEquilibriumIsSane) {
  const NetworkParams params = default_params();
  const auto result = solve_sp_equilibrium_homogeneous(
      params, 40.0, 5, EdgeMode::kConnected, fast_options());
  EXPECT_TRUE(result.converged);
  // Prices above cost (otherwise an SP would be better off at cost).
  EXPECT_GT(result.prices.edge, params.cost_edge);
  EXPECT_GT(result.prices.cloud, params.cost_cloud);
  // The ESP has no delay penalty: it must command the premium price.
  EXPECT_GT(result.prices.edge, result.prices.cloud);
  EXPECT_GE(result.profits.edge, 0.0);
  EXPECT_GE(result.profits.cloud, 0.0);
  // Miners actually buy at the equilibrium.
  EXPECT_GT(result.follower.request.total(), 0.0);
}

TEST(HomogeneousStackelberg, EquilibriumPricesAreStable) {
  // At the computed solution: the CSP's price is a best response to P_e*
  // (it is the Stackelberg follower among leaders per Theorem 4), and the
  // ESP cannot gain by deviating along the CSP's reaction curve.
  const NetworkParams params = default_params();
  const auto options = fast_options();
  const auto result = solve_sp_equilibrium_homogeneous(
      params, 40.0, 5, EdgeMode::kConnected, options);
  const auto cloud_payoff = [&](const Prices& prices) {
    const auto eq =
        solve_followers_symmetric(params, prices, 40.0, 5,
                                  EdgeMode::kConnected,
                                  options.resolved_context());
    return sp_profits(params, prices, eq.totals).cloud;
  };
  const auto composite_edge_payoff = [&](double pe) {
    const double pc = csp_reaction_homogeneous(params, 40.0, 5,
                                               EdgeMode::kConnected, pe,
                                               options);
    const auto eq =
        solve_followers_symmetric(params, {pe, pc}, 40.0, 5,
                                  EdgeMode::kConnected,
                                  options.resolved_context());
    return sp_profits(params, {pe, pc}, eq.totals).edge;
  };
  const double base_cloud = cloud_payoff(result.prices);
  const double base_edge = composite_edge_payoff(result.prices.edge);
  for (double factor : {0.9, 0.97, 1.03, 1.1}) {
    Prices probe_c = result.prices;
    probe_c.cloud *= factor;
    if (probe_c.cloud > params.cost_cloud) {
      EXPECT_LE(cloud_payoff(probe_c), base_cloud * 1.01 + 1e-6);
    }
    const double probe_pe = result.prices.edge * factor;
    if (probe_pe > params.cost_edge) {
      EXPECT_LE(composite_edge_payoff(probe_pe), base_edge * 1.01 + 1e-6);
    }
  }
}

TEST(HomogeneousStackelberg, StandaloneSellsOutTheEdge) {
  // Paper Problem 2c: at the standalone SP equilibrium the ESP sells its
  // whole capacity (with sufficient miner budgets).
  const NetworkParams params = default_params();
  const auto result = solve_sp_equilibrium_homogeneous(
      params, 500.0, 5, EdgeMode::kStandalone, fast_options());
  EXPECT_NEAR(5.0 * result.follower.request.edge, params.edge_capacity,
              0.05 * params.edge_capacity);
}

TEST(HomogeneousStackelberg, StandaloneEspChargesMoreAndEarnsMore) {
  // Paper Sec. IV-C.3 & Fig. 8: with scarce edge capacity (the paper's
  // premise: "limited and expensive edge resources"), the standalone mode
  // lets the ESP charge a higher price and extract more profit than the
  // connected mode, while the CSP's profit does not improve.
  NetworkParams params = default_params();
  params.edge_capacity = 4.0;
  const auto connected = solve_sp_equilibrium_homogeneous(
      params, 500.0, 5, EdgeMode::kConnected, fast_options());
  const auto standalone =
      solve_sp_standalone_sellout(params, 500.0, 5, fast_options());
  EXPECT_GT(standalone.prices.edge, connected.prices.edge);
  EXPECT_GT(standalone.profits.edge, connected.profits.edge);
  EXPECT_LT(standalone.profits.cloud, connected.profits.cloud * 1.05);
}

TEST(HomogeneousStackelberg, StandaloneSelloutMatchesTableIIClosedForm) {
  const NetworkParams params = default_params();
  const auto closed = standalone_sp_closed_form(params, 5);
  ASSERT_TRUE(closed.valid);
  SpSolveOptions options = fast_options();
  options.grid_points = 80;
  const auto numeric = solve_sp_standalone_sellout(params, 1e4, 5, options);
  EXPECT_NEAR(numeric.prices.cloud, closed.prices.cloud,
              0.02 * closed.prices.cloud);
  EXPECT_NEAR(numeric.prices.edge, closed.prices.edge,
              0.02 * closed.prices.edge);
  EXPECT_NEAR(numeric.profits.edge, closed.profit_edge,
              0.02 * closed.profit_edge);
}

TEST(HomogeneousStackelberg, UnconstrainedStandaloneLetsCspUndercut) {
  // Observed refinement of the paper's Problem 2c (documented in
  // EXPERIMENTS.md): without the imposed sell-out constraint, the CSP
  // undercuts just below the ESP's sell-out price, so the free equilibrium
  // yields the ESP weakly less profit than the Table II point.
  const NetworkParams params = default_params();
  const auto sellout =
      solve_sp_standalone_sellout(params, 1e4, 5, fast_options());
  const auto free_game = solve_sp_equilibrium_homogeneous(
      params, 1e4, 5, EdgeMode::kStandalone, fast_options());
  EXPECT_LE(free_game.profits.edge, sellout.profits.edge * 1.01);
}

TEST(CspReaction, LiesBelowMixedBoundAndAboveCost) {
  const NetworkParams params = default_params();
  for (double pe : {1.8, 2.5, 3.5}) {
    const double pc = csp_reaction_homogeneous(params, 40.0, 5,
                                               EdgeMode::kConnected, pe,
                                               fast_options());
    EXPECT_GT(pc, params.cost_cloud);
    EXPECT_LT(pc, pe);
  }
}

TEST(CspReaction, HigherEdgePriceAllowsHigherCloudPrice) {
  // Strategic complements: the CSP's best response rises with P_e.
  const NetworkParams params = default_params();
  const double low = csp_reaction_homogeneous(params, 40.0, 5,
                                              EdgeMode::kConnected, 2.0,
                                              fast_options());
  const double high = csp_reaction_homogeneous(params, 40.0, 5,
                                               EdgeMode::kConnected, 4.0,
                                               fast_options());
  EXPECT_GE(high, low - 1e-3);
}

TEST(SequentialSolve, AgreesWithSimultaneousOnProfits) {
  // Theorem 4's sequential construction should give (approximately) the
  // same outcome as asynchronous best response when the latter converges.
  const NetworkParams params = default_params();
  const auto simultaneous = solve_sp_equilibrium_homogeneous(
      params, 40.0, 5, EdgeMode::kConnected, fast_options());
  const auto sequential = solve_sp_sequential_homogeneous(
      params, 40.0, 5, EdgeMode::kConnected, fast_options());
  EXPECT_NEAR(sequential.profits.edge, simultaneous.profits.edge,
              0.1 * std::abs(simultaneous.profits.edge) + 0.5);
}

TEST(FullProfileStackelberg, HeterogeneousBudgetsSolve) {
  const NetworkParams params = default_params();
  SpSolveOptions options = fast_options();
  options.grid_points = 16;
  options.max_rounds = 15;
  options.tolerance = 1e-3;
  const std::vector<double> budgets{20.0, 30.0, 40.0};
  const auto result =
      solve_sp_equilibrium(params, budgets, EdgeMode::kConnected, options);
  EXPECT_GT(result.prices.edge, params.cost_edge);
  EXPECT_GT(result.prices.cloud, params.cost_cloud);
  EXPECT_GT(result.followers.totals.grand(), 0.0);
  // Richer miners buy more at the equilibrium prices.
  EXPECT_GE(result.followers.requests[2].total(),
            result.followers.requests[0].total() - 1e-6);
}

TEST(SpSolve, ValidatesInputs) {
  const NetworkParams params = default_params();
  EXPECT_THROW((void)solve_sp_equilibrium_homogeneous(
                   params, 0.0, 5, EdgeMode::kConnected),
               support::PreconditionError);
  EXPECT_THROW((void)solve_sp_equilibrium_homogeneous(
                   params, 10.0, 1, EdgeMode::kConnected),
               support::PreconditionError);
  EXPECT_THROW((void)solve_sp_equilibrium(params, {}, EdgeMode::kConnected),
               support::PreconditionError);
}

}  // namespace
}  // namespace hecmine::core
