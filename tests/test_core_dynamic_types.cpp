// Tests for the heterogeneous-type dynamic game.
#include "core/dynamic_types.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"

namespace hecmine::core {
namespace {

DynamicGameConfig default_config() {
  DynamicGameConfig config;
  config.params.reward = 100.0;
  config.params.fork_rate = 0.2;
  config.params.edge_capacity = 8.0;
  config.prices = {2.0, 1.0};
  config.budget = 0.0;  // ignored by the typed solver
  config.edge_success = 0.5;
  return config;
}

TEST(DynamicTypes, SingleTypeReducesToTheSymmetricSolver) {
  DynamicGameConfig config = default_config();
  const PopulationModel population = PopulationModel::around(10.0, 2.0);
  const auto typed = solve_dynamic_types(config, population,
                                         {{12.0, 1.0}});
  ASSERT_TRUE(typed.converged);
  config.budget = 12.0;
  const auto symmetric = solve_dynamic_symmetric(config, population);
  ASSERT_TRUE(symmetric.converged);
  EXPECT_NEAR(typed.requests[0].edge, symmetric.request.edge, 2e-4);
  EXPECT_NEAR(typed.requests[0].cloud, symmetric.request.cloud, 2e-3);
  EXPECT_NEAR(typed.expected_total_edge, symmetric.expected_total_edge, 2e-3);
}

TEST(DynamicTypes, RicherTypeRequestsWeaklyMore) {
  const DynamicGameConfig config = default_config();
  const PopulationModel population = PopulationModel::around(8.0, 2.0);
  const auto typed = solve_dynamic_types(
      config, population, {{3.0, 0.5}, {40.0, 0.5}});
  ASSERT_TRUE(typed.converged);
  // The poor type is budget-limited; the rich type plays the unconstrained
  // best response against the mixture.
  EXPECT_LT(request_cost(typed.requests[0], config.prices), 3.0 + 1e-7);
  EXPECT_GE(typed.requests[1].total(), typed.requests[0].total() - 1e-9);
}

TEST(DynamicTypes, EqualBudgetsCollapseTypeDistinctions) {
  const DynamicGameConfig config = default_config();
  const PopulationModel population = PopulationModel::around(8.0, 1.5);
  const auto typed = solve_dynamic_types(
      config, population, {{12.0, 0.3}, {12.0, 0.7}});
  ASSERT_TRUE(typed.converged);
  EXPECT_NEAR(typed.requests[0].edge, typed.requests[1].edge, 1e-5);
  EXPECT_NEAR(typed.requests[0].cloud, typed.requests[1].cloud, 1e-4);
}

TEST(DynamicTypes, MixtureIsTheFractionWeightedAverage) {
  const DynamicGameConfig config = default_config();
  const PopulationModel population = PopulationModel::around(8.0, 1.5);
  const auto typed = solve_dynamic_types(
      config, population, {{5.0, 0.25}, {30.0, 0.75}});
  ASSERT_TRUE(typed.converged);
  EXPECT_NEAR(typed.mixture.edge,
              0.25 * typed.requests[0].edge + 0.75 * typed.requests[1].edge,
              1e-12);
}

TEST(DynamicTypes, PoorMajorityDampensAggregateEdgeDemand) {
  const DynamicGameConfig config = default_config();
  const PopulationModel population = PopulationModel::around(10.0, 2.0);
  const auto rich_heavy = solve_dynamic_types(
      config, population, {{3.0, 0.2}, {30.0, 0.8}});
  const auto poor_heavy = solve_dynamic_types(
      config, population, {{3.0, 0.8}, {30.0, 0.2}});
  ASSERT_TRUE(rich_heavy.converged);
  ASSERT_TRUE(poor_heavy.converged);
  EXPECT_LT(poor_heavy.expected_total_edge, rich_heavy.expected_total_edge);
}

TEST(DynamicTypes, Validates) {
  const DynamicGameConfig config = default_config();
  const PopulationModel population = PopulationModel::around(8.0, 1.0);
  EXPECT_THROW((void)solve_dynamic_types(config, population, {}),
               support::PreconditionError);
  EXPECT_THROW((void)solve_dynamic_types(config, population,
                                         {{10.0, 0.5}, {10.0, 0.6}}),
               support::PreconditionError);
  EXPECT_THROW((void)solve_dynamic_types(config, population, {{0.0, 1.0}}),
               support::PreconditionError);
}

}  // namespace
}  // namespace hecmine::core
