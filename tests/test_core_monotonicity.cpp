// Numerical stand-in for the paper's supplementary uniqueness argument:
// Theorem 2's uniqueness (and the convergence of the VI machinery behind
// Theorem 5) rests on the monotonicity of the game map
// F(r) = (-grad U_i)_i. The closed-form proof lives on the authors'
// supplementary site; here we verify the *property* numerically — the
// monotonicity quotient of F stays non-negative over sampled strategy
// regions for a grid of game parameters.
#include <gtest/gtest.h>

#include <vector>

#include "core/miner.hpp"
#include "core/params.hpp"
#include "numerics/vi.hpp"
#include "support/rng.hpp"

namespace hecmine::core {
namespace {

/// The stacked negated-gradient map of the n-miner game at (beta, h).
std::function<std::vector<double>(const std::vector<double>&)> game_map(
    double beta, double h, std::size_t n, const Prices& prices) {
  return [beta, h, n, prices](const std::vector<double>& flat) {
    Totals totals;
    for (std::size_t i = 0; i < n; ++i) {
      totals.edge += flat[2 * i];
      totals.cloud += flat[2 * i + 1];
    }
    std::vector<double> f(flat.size());
    for (std::size_t i = 0; i < n; ++i) {
      MinerEnv env;
      env.reward = 100.0;
      env.fork_rate = beta;
      env.edge_success = h;
      env.prices = prices;
      env.budget = 1e9;
      env.others = {totals.edge - flat[2 * i],
                    totals.cloud - flat[2 * i + 1]};
      const auto [du_de, du_dc] =
          miner_utility_gradient(env, {flat[2 * i], flat[2 * i + 1]});
      f[2 * i] = -du_de;
      f[2 * i + 1] = -du_dc;
    }
    return f;
  };
}

class MonotonicityTest
    : public ::testing::TestWithParam<std::tuple<double, double, std::size_t>> {};

TEST_P(MonotonicityTest, GameMapIsMonotoneOnSampledRegion) {
  const auto [beta, h, n] = GetParam();
  const Prices prices{2.0, 1.0};
  const auto map = game_map(beta, h, n, prices);
  support::Rng rng{4242 + n};
  // Sample interior profiles away from the degenerate origin (the paper's
  // game is played on requests bounded away from zero by profitability).
  std::vector<std::vector<double>> points;
  for (int p = 0; p < 24; ++p) {
    std::vector<double> point(2 * n);
    for (double& coordinate : point) coordinate = rng.uniform(0.5, 12.0);
    points.push_back(point);
  }
  const double quotient = num::monotonicity_quotient(map, points);
  EXPECT_GE(quotient, -1e-9) << "beta=" << beta << " h=" << h << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MonotonicityTest,
    ::testing::Combine(::testing::Values(0.05, 0.2, 0.45),
                       ::testing::Values(0.5, 0.9, 1.0),
                       ::testing::Values<std::size_t>(2, 3, 5)));

}  // namespace
}  // namespace hecmine::core
