// Solver-health tests: the ConvergenceEstimator classifiers on synthetic
// residual streams (clean geometric decay, sign-alternating oscillation,
// plateau/stall, divergence by sustained growth / window blowup / NaN,
// short-stream and below-tolerance edge cases), the HealthMonitor's
// probe-fed gauges and hecmine.health.v1 events, watchdog escalation
// (warn vs abort), thread-count invariance of the health.* gauges, and the
// flight-recorder event-drain durability path (events written by the final
// flush on destruction).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/error.hpp"
#include "support/health.hpp"
#include "support/json.hpp"
#include "support/telemetry.hpp"

namespace {

using namespace hecmine;
namespace health = support::health;
using health::ConvergenceEstimator;
using health::LoopState;

/// Residual stream r_0 * prod(ratios, cyclically) of length `count`.
std::vector<double> stream(double r0, const std::vector<double>& ratios,
                           int count) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(count));
  double r = r0;
  for (int i = 0; i < count; ++i) {
    out.push_back(r);
    r *= ratios[static_cast<std::size_t>(i) % ratios.size()];
  }
  return out;
}

/// Feeds a residual stream; returns the first non-healthy classification
/// the estimator emitted (kHealthy if none ever fired).
LoopState feed(ConvergenceEstimator& estimator,
               const std::vector<double>& residuals, double tolerance) {
  LoopState first = LoopState::kHealthy;
  for (double r : residuals) {
    const LoopState fired = estimator.update(r, tolerance);
    if (fired != LoopState::kHealthy && first == LoopState::kHealthy)
      first = fired;
  }
  return first;
}

double gauge_value(const support::Telemetry& telemetry,
                   const std::string& name) {
  for (const auto& gauge : telemetry.metrics.snapshot().gauges)
    if (gauge.name == name) return gauge.value;
  return std::numeric_limits<double>::quiet_NaN();
}

support::IterationProbe::Record make_record(const std::string& solver,
                                            std::uint64_t solve, int iteration,
                                            double residual,
                                            double tolerance) {
  support::IterationProbe::Record record;
  record.solver = solver;
  record.solve = solve;
  record.iteration = iteration;
  record.residual = residual;
  record.tolerance = tolerance;
  return record;
}

TEST(ConvergenceEstimatorTest, GeometricDecayStaysHealthy) {
  ConvergenceEstimator estimator;
  const auto residuals = stream(1.0, {0.5}, 30);
  EXPECT_EQ(feed(estimator, residuals, 1e-12), LoopState::kHealthy);
  EXPECT_EQ(estimator.state(), LoopState::kHealthy);
  EXPECT_NEAR(estimator.rho(), 0.5, 1e-9);
  EXPECT_NEAR(estimator.rho_worst(), 0.5, 1e-9);
  EXPECT_EQ(estimator.iterations(), 30);
}

TEST(ConvergenceEstimatorTest, PredictionMatchesGeometricDecay) {
  ConvergenceEstimator estimator;
  const double tol = 1e-6;
  const auto residuals = stream(1.0, {0.5}, 10);
  feed(estimator, residuals, tol);
  // r_9 = 0.5^9; rho = 0.5 exactly, so predicted = ceil(log2(r/tol)).
  const double expected =
      std::ceil(std::log(tol / estimator.last_residual()) / std::log(0.5));
  EXPECT_DOUBLE_EQ(estimator.predicted_iterations(), expected);
  EXPECT_GT(expected, 0.0);
  EXPECT_TRUE(std::isfinite(expected));
}

TEST(ConvergenceEstimatorTest, SignAlternationClassifiedAsOscillation) {
  ConvergenceEstimator estimator;
  // Residual bounces up/down every step (ratios 0.6 / 1.6): pure sign
  // alternation with essentially no net decay. The EWMA never holds above
  // the divergence threshold, so oscillation — not divergence — fires.
  const auto residuals = stream(1.0, {0.6, 1.6}, 24);
  EXPECT_EQ(feed(estimator, residuals, 1e-9), LoopState::kOscillating);
  EXPECT_EQ(estimator.state(), LoopState::kOscillating);
}

TEST(ConvergenceEstimatorTest, BracketingZeroBouncesStayHealthy) {
  ConvergenceEstimator estimator;
  // A bracketing loop (the GNEP surcharge bisection) reports residual 0 at
  // every feasible probe and a shrinking violation at every infeasible one.
  // The zero -> positive transitions carry no contraction information and
  // must not be fed to the EWMA as capped growth ratios.
  std::vector<double> residuals;
  double violation = 1.0;
  for (int i = 0; i < 16; ++i) {
    residuals.push_back(violation);
    residuals.push_back(0.0);
    violation *= 0.5;
  }
  EXPECT_EQ(feed(estimator, residuals, 1e-12), LoopState::kHealthy);
  EXPECT_EQ(estimator.state(), LoopState::kHealthy);
  EXPECT_LT(estimator.rho_worst(), 1.0);
}

TEST(ConvergenceEstimatorTest, PeriodicLimitCycleIsOscillationNotDivergence) {
  ConvergenceEstimator estimator;
  // A period-4 limit cycle far above tolerance (the shape of a leader
  // best-response loop bouncing between grid points). The up-leg ratios
  // push the EWMA above the divergence threshold, but the residual never
  // exceeds values it has already visited — recurrence classifies it as
  // oscillation and the fresh-high requirement keeps divergence quiet.
  std::vector<double> residuals;
  const double cycle[4] = {1.7, 50.1, 42.0, 6.3};
  for (int i = 0; i < 40; ++i) residuals.push_back(cycle[i % 4]);
  EXPECT_EQ(feed(estimator, residuals, 1e-5), LoopState::kOscillating);
  EXPECT_EQ(estimator.state(), LoopState::kOscillating);
  EXPECT_GT(estimator.rho_worst(), 1.0);
}

TEST(ConvergenceEstimatorTest, PlateauClassifiedAsStall) {
  ConvergenceEstimator estimator;
  // Decays briefly, then sits at exactly 0.5 far above tolerance.
  std::vector<double> residuals = {1.0, 0.9, 0.8, 0.7, 0.6};
  for (int i = 0; i < 12; ++i) residuals.push_back(0.5);
  EXPECT_EQ(feed(estimator, residuals, 1e-9), LoopState::kStalled);
  EXPECT_EQ(estimator.state(), LoopState::kStalled);
}

TEST(ConvergenceEstimatorTest, SustainedGrowthClassifiedAsDivergence) {
  ConvergenceEstimator estimator;
  // Steady 1.3x growth: the EWMA locks above divergence_rho = 1.1 and the
  // patience counter fires; window blowup (100x) never triggers first.
  const auto residuals = stream(1e-3, {1.3}, 20);
  EXPECT_EQ(feed(estimator, residuals, 1e-9), LoopState::kDiverging);
  EXPECT_EQ(estimator.state(), LoopState::kDiverging);
  EXPECT_GT(estimator.rho_worst(), 1.1);
}

TEST(ConvergenceEstimatorTest, WindowBlowupClassifiedAsDivergence) {
  ConvergenceEstimator estimator;
  // Doubling each step: 2^7 = 128x growth across the 8-wide window fires
  // the fast path before the patience counter completes.
  const auto residuals = stream(1e-3, {2.0}, 9);
  EXPECT_EQ(feed(estimator, residuals, 1e-9), LoopState::kDiverging);
}

TEST(ConvergenceEstimatorTest, NonFiniteResidualIsImmediateDivergence) {
  ConvergenceEstimator estimator;
  EXPECT_EQ(estimator.update(1.0, 1e-9), LoopState::kHealthy);
  EXPECT_EQ(estimator.update(std::numeric_limits<double>::quiet_NaN(), 1e-9),
            LoopState::kDiverging);
  // Fires only once.
  EXPECT_EQ(estimator.update(std::numeric_limits<double>::infinity(), 1e-9),
            LoopState::kHealthy);
  EXPECT_EQ(estimator.state(), LoopState::kDiverging);
}

TEST(ConvergenceEstimatorTest, ShortStreamNeverFires) {
  // Even an aggressively growing stream shorter than the warmup stays
  // unclassified — too few samples to call anything.
  ConvergenceEstimator estimator;
  const auto residuals = stream(1.0, {2.0}, 5);
  EXPECT_EQ(feed(estimator, residuals, 1e-9), LoopState::kHealthy);
  EXPECT_EQ(estimator.state(), LoopState::kHealthy);
}

TEST(ConvergenceEstimatorTest, BelowToleranceNeverFires) {
  // A residual plateau *below* the loop's tolerance is the loop jittering
  // at its exit condition, not a stall.
  ConvergenceEstimator estimator;
  const auto residuals = stream(1e-8, {1.0}, 20);
  EXPECT_EQ(feed(estimator, residuals, 1e-6), LoopState::kHealthy);
  EXPECT_DOUBLE_EQ(estimator.predicted_iterations(), 0.0);
}

TEST(ConvergenceEstimatorTest, ToleranceFallsBackWhenUnknown) {
  health::HealthOptions options;
  options.fallback_tolerance = 1e-3;
  ConvergenceEstimator estimator(options);
  // Plateau at 1e-4 < fallback tolerance: healthy.
  const auto residuals = stream(1e-4, {1.0}, 20);
  EXPECT_EQ(feed(estimator, residuals, 0.0), LoopState::kHealthy);
  EXPECT_DOUBLE_EQ(estimator.tolerance(), 1e-3);
}

TEST(HealthMonitorTest, CleanSolvesProduceNoIncidents) {
  support::Telemetry telemetry;
  health::HealthMonitor monitor(telemetry);
  EXPECT_TRUE(telemetry.probe.armed());  // observer arms the probe
  for (int s = 0; s < 3; ++s) {
    const std::uint64_t solve = telemetry.probe.next_solve_id();
    const auto residuals = stream(1.0, {0.5}, 20);
    for (int i = 0; i < 20; ++i)
      telemetry.probe.record(make_record(
          "nep.best_response", solve, i + 1,
          residuals[static_cast<std::size_t>(i)], 1e-12));
  }
  EXPECT_EQ(monitor.incidents(), 0u);
  EXPECT_TRUE(monitor.events().empty());
  EXPECT_EQ(gauge_value(telemetry, "health.nep.best_response.solves"), 3.0);
  EXPECT_EQ(gauge_value(telemetry, "health.nep.best_response.records"), 60.0);
  EXPECT_EQ(gauge_value(telemetry, "health.nep.best_response.divergences"),
            0.0);
  EXPECT_NEAR(gauge_value(telemetry, "health.nep.best_response.rho_worst"),
              0.5, 1e-9);
  EXPECT_EQ(gauge_value(telemetry, "health.incidents"), 0.0);
}

TEST(HealthMonitorTest, DivergingSolveRaisesEventAndGauges) {
  support::Telemetry telemetry;
  health::HealthOptions options;
  options.action = health::WatchdogAction::kObserve;
  health::HealthMonitor monitor(telemetry, options);
  const std::uint64_t solve = telemetry.probe.next_solve_id();
  const auto residuals = stream(1e-3, {1.3}, 20);
  for (int i = 0; i < 20; ++i)
    telemetry.probe.record(make_record(
        "vi.extragradient", solve, i + 1,
        residuals[static_cast<std::size_t>(i)], 1e-9));
  EXPECT_EQ(monitor.incidents(), 1u);
  const std::vector<health::HealthEvent> events = monitor.events();
  ASSERT_EQ(events.size(), 1u);
  const health::HealthEvent& event = events.front();
  EXPECT_EQ(event.solver, "vi.extragradient");
  EXPECT_EQ(event.solve, solve);
  EXPECT_EQ(event.classification, LoopState::kDiverging);
  EXPECT_GT(event.rho, 1.1);
  EXPECT_EQ(gauge_value(telemetry, "health.vi.extragradient.divergences"),
            1.0);
  EXPECT_EQ(gauge_value(telemetry, "health.incidents"), 1.0);

  // The drained line is a parseable hecmine.health.v1 record.
  const auto lines = monitor.drain_event_lines();
  ASSERT_EQ(lines.size(), 1u);
  const auto parsed = support::json::parse(lines.front());
  EXPECT_EQ(parsed.at("schema").as_string(), "hecmine.health.v1");
  EXPECT_EQ(parsed.at("solver").as_string(), "vi.extragradient");
  EXPECT_EQ(parsed.at("classification").as_string(), "diverging");
  EXPECT_EQ(parsed.at("action").as_string(), "observe");
  // Draining moves the lines out: a second drain is empty.
  EXPECT_TRUE(monitor.drain_event_lines().empty());
}

TEST(HealthMonitorTest, AbortActionThrowsTypedErrorOnDivergence) {
  support::Telemetry telemetry;
  health::HealthOptions options;
  options.action = health::WatchdogAction::kAbort;
  health::HealthMonitor monitor(telemetry, options);
  const std::uint64_t solve = telemetry.probe.next_solve_id();
  const auto residuals = stream(1e-3, {1.3}, 20);
  bool thrown = false;
  try {
    for (int i = 0; i < 20; ++i)
      telemetry.probe.record(make_record(
          "gnep.inner", solve, i + 1, residuals[static_cast<std::size_t>(i)],
          1e-9));
  } catch (const health::SolverHealthError& error) {
    thrown = true;
    EXPECT_EQ(error.solver(), "gnep.inner");
    EXPECT_EQ(error.solve(), solve);
    EXPECT_EQ(error.state(), LoopState::kDiverging);
    EXPECT_GT(error.rho(), 1.1);
  }
  EXPECT_TRUE(thrown);
  EXPECT_EQ(monitor.incidents(), 1u);
  // The record that triggered the abort still landed in the probe ring
  // (the observer runs after ring insertion).
  EXPECT_FALSE(telemetry.probe.snapshot().empty());
}

TEST(HealthMonitorTest, WarnActionDoesNotThrow) {
  support::Telemetry telemetry;
  health::HealthOptions options;
  options.action = health::WatchdogAction::kWarn;
  health::HealthMonitor monitor(telemetry, options);
  const std::uint64_t solve = telemetry.probe.next_solve_id();
  const auto residuals = stream(1e-3, {1.3}, 20);
  EXPECT_NO_THROW({
    for (int i = 0; i < 20; ++i)
      telemetry.probe.record(make_record(
          "gnep.inner", solve, i + 1, residuals[static_cast<std::size_t>(i)],
          1e-9));
  });
  EXPECT_EQ(monitor.incidents(), 1u);
}

TEST(HealthMonitorTest, DetachOnDestructionDisablesObserver) {
  support::Telemetry telemetry;
  {
    health::HealthMonitor monitor(telemetry);
    EXPECT_EQ(telemetry.probe.observer(), &monitor);
  }
  EXPECT_EQ(telemetry.probe.observer(), nullptr);
}

/// The determinism contract: health.* gauges are sums and maxima over the
/// multiset of solves, so any interleaving of the same solves across any
/// number of threads produces identical values.
TEST(HealthMonitorTest, GaugesInvariantAcrossThreadCounts) {
  // 8 solves: 6 clean geometric decays with different rates, 2 divergent.
  std::vector<std::vector<double>> solves;
  for (int s = 0; s < 6; ++s)
    solves.push_back(stream(1.0, {0.4 + 0.05 * s}, 25));
  solves.push_back(stream(1e-3, {1.3}, 20));
  solves.push_back(stream(1e-2, {1.3}, 20));

  const auto run = [&](int threads) {
    support::Telemetry telemetry;
    health::HealthOptions options;
    options.action = health::WatchdogAction::kObserve;
    health::HealthMonitor monitor(telemetry, options);
    // Solve ids fixed up front so they do not depend on thread scheduling.
    std::vector<std::uint64_t> ids;
    for (std::size_t s = 0; s < solves.size(); ++s)
      ids.push_back(telemetry.probe.next_solve_id());
    const auto worker = [&](std::size_t begin, std::size_t step) {
      for (std::size_t s = begin; s < solves.size(); s += step) {
        for (std::size_t i = 0; i < solves[s].size(); ++i)
          telemetry.probe.record(make_record("aggregate.fixed_point", ids[s],
                                             static_cast<int>(i) + 1,
                                             solves[s][i], 1e-10));
      }
    };
    if (threads <= 1) {
      worker(0, 1);
    } else {
      std::vector<std::thread> pool;
      for (int t = 0; t < threads; ++t)
        pool.emplace_back(worker, static_cast<std::size_t>(t),
                          static_cast<std::size_t>(threads));
      for (auto& thread : pool) thread.join();
    }
    std::vector<std::pair<std::string, double>> gauges;
    for (const auto& gauge : telemetry.metrics.snapshot().gauges)
      gauges.emplace_back(gauge.name, gauge.value);
    return gauges;
  };

  const auto serial = run(1);
  const auto parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].first, parallel[i].first);
    EXPECT_DOUBLE_EQ(serial[i].second, parallel[i].second)
        << "gauge " << serial[i].first;
  }
}

std::string slurp_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Durability satellite: watchdog events raised after the last periodic
/// flush still reach the flight stream, because the final flush (run by
/// stop(), and by the destructor on unwinds) drains them first.
TEST(HealthMonitorTest, FlightRecorderDrainsEventsOnDestruction) {
  const std::string path =
      testing::TempDir() + "/hecmine_health_flight.jsonl";
  support::Telemetry telemetry;
  {
    health::HealthOptions options;
    options.action = health::WatchdogAction::kObserve;
    health::HealthMonitor monitor(telemetry, options);
    support::TelemetryFlusher::Options flush_options;
    flush_options.interval = std::chrono::milliseconds(60'000);  // final only
    support::TelemetryFlusher flusher(telemetry, path, flush_options);
    flusher.set_event_drain([&monitor] { return monitor.drain_event_lines(); });
    const std::uint64_t solve = telemetry.probe.next_solve_id();
    const auto residuals = stream(1e-3, {1.3}, 20);
    for (int i = 0; i < 20; ++i)
      telemetry.probe.record(make_record(
          "symmetric.fixed_point", solve, i + 1,
          residuals[static_cast<std::size_t>(i)], 1e-9));
    EXPECT_EQ(monitor.incidents(), 1u);
    // No flush_now, no stop: the destructor's final flush must drain.
  }
  const auto lines = support::json::parse_lines(slurp_file(path));
  ASSERT_GE(lines.size(), 2u);  // header + event + final snapshot
  bool found = false;
  for (const auto& line : lines) {
    if (!line.is_object() || !line.contains("schema")) continue;
    if (line.at("schema").as_string() != "hecmine.health.v1") continue;
    found = true;
    EXPECT_EQ(line.at("solver").as_string(), "symmetric.fixed_point");
    EXPECT_EQ(line.at("classification").as_string(), "diverging");
  }
  EXPECT_TRUE(found) << "no hecmine.health.v1 event in the flight stream";
  std::remove(path.c_str());
}

TEST(HealthOptionsTest, WatchdogActionParsesAndRejects) {
  EXPECT_EQ(health::parse_watchdog_action("observe"),
            health::WatchdogAction::kObserve);
  EXPECT_EQ(health::parse_watchdog_action("warn"),
            health::WatchdogAction::kWarn);
  EXPECT_EQ(health::parse_watchdog_action("abort"),
            health::WatchdogAction::kAbort);
  EXPECT_THROW((void)health::parse_watchdog_action("off"),
               support::PreconditionError);
}

}  // namespace
