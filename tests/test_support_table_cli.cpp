// Tests for support/table and support/cli.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/table.hpp"

namespace hecmine::support {
namespace {

TEST(Table, RejectsEmptyColumnsAndBadRows) {
  EXPECT_THROW(Table({}), PreconditionError);
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({1.0}), PreconditionError);
}

TEST(Table, StoresAndRetrievesValues) {
  Table table({"x", "y"});
  table.add_row({1.0, 2.0});
  table.add_row({3.0, 4.0});
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_DOUBLE_EQ(table.at(1, 0), 3.0);
  EXPECT_THROW((void)table.at(2, 0), PreconditionError);
  EXPECT_THROW((void)table.at(0, 2), PreconditionError);
}

TEST(Table, PrintsAlignedHeaderAndRows) {
  Table table({"price", "units"});
  table.add_row({1.5, 20.0});
  std::ostringstream os;
  table.print(os, 2);
  const std::string text = os.str();
  EXPECT_NE(text.find("price"), std::string::npos);
  EXPECT_NE(text.find("1.50"), std::string::npos);
  EXPECT_NE(text.find("20.00"), std::string::npos);
  EXPECT_NE(text.find("|-"), std::string::npos);
}

TEST(Table, WritesCsvRoundTrip) {
  const std::string path = "test_out/table_roundtrip.csv";
  Table table({"alpha", "beta"});
  table.add_row({0.125, -7.5});
  table.write_csv(path);
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "alpha,beta");
  EXPECT_EQ(row, "0.125,-7.5");
  std::filesystem::remove_all("test_out");
}

TEST(Table, CreatesParentDirectories) {
  const std::string path = "test_out/nested/dir/t.csv";
  Table table({"a"});
  table.add_row({1.0});
  table.write_csv(path);
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove_all("test_out");
}

TEST(PrintSection, EmitsBanner) {
  std::ostringstream os;
  print_section(os, "Fig 4");
  EXPECT_EQ(os.str(), "\n== Fig 4 ==\n");
}

CliArgs make_args(std::initializer_list<const char*> argv_list) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), argv_list.begin(), argv_list.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesEqualsAndSpaceForms) {
  const auto args = make_args({"--alpha=1.5", "--name", "bench", "pos1"});
  EXPECT_DOUBLE_EQ(args.get("alpha", 0.0), 1.5);
  EXPECT_EQ(args.get("name", ""), "bench");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(Cli, DefaultsWhenAbsent) {
  const auto args = make_args({});
  EXPECT_DOUBLE_EQ(args.get("missing", 2.5), 2.5);
  EXPECT_EQ(args.get("missing", std::string("x")), "x");
  EXPECT_EQ(args.get("missing", 7), 7);
  EXPECT_FALSE(args.has("missing"));
}

TEST(Cli, BareFlagIsTrue) {
  const auto args = make_args({"--verbose"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get("verbose", ""), "true");
}

TEST(Cli, RejectsMalformedNumbers) {
  const auto args = make_args({"--n=abc"});
  EXPECT_THROW((void)args.get("n", 1.0), PreconditionError);
}

TEST(Cli, TracksUnknownFlags) {
  const auto args = make_args({"--used=1", "--stray=2"});
  (void)args.get("used", 0.0);
  const auto unknown = args.unknown_flags();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "stray");
}

}  // namespace
}  // namespace hecmine::support
