// Tests for core/population and core/dynamic (paper Section V): the
// truncated Gaussian miner-count law and the symmetric dynamic equilibrium,
// including the paper's headline findings on population uncertainty.
#include <gtest/gtest.h>

#include <cmath>

#include "core/dynamic.hpp"
#include "core/oracle.hpp"
#include "core/population.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace hecmine::core {
namespace {

TEST(PopulationModel, PmfSumsToOne) {
  const PopulationModel model(10.0, 2.0, 1, 25);
  double total = 0.0;
  for (int k = model.min_miners(); k <= model.max_miners(); ++k)
    total += model.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(model.pmf(0), 0.0);
  EXPECT_DOUBLE_EQ(model.pmf(26), 0.0);
}

TEST(PopulationModel, MomentsApproximateTheGaussian) {
  // Paper Fig. 3 toy: mu = 10, sigma^2 = 4. Centered bins keep the mean.
  const PopulationModel model = PopulationModel::around(10.0, 2.0);
  EXPECT_NEAR(model.mean(), 10.0, 0.02);
  EXPECT_NEAR(model.variance(), 4.0, 0.15);
}

TEST(PopulationModel, DegenerateStddevConcentrates) {
  const PopulationModel model(7.0, 0.0, 1, 20);
  EXPECT_NEAR(model.pmf(7), 1.0, 1e-12);
  EXPECT_NEAR(model.mean(), 7.0, 1e-12);
}

TEST(PopulationModel, SampleMatchesPmf) {
  const PopulationModel model = PopulationModel::around(10.0, 2.0);
  support::Rng rng{41};
  std::vector<int> counts(40, 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) ++counts[static_cast<std::size_t>(model.sample(rng))];
  for (int k = model.min_miners(); k <= model.max_miners(); ++k) {
    const double empirical =
        static_cast<double>(counts[static_cast<std::size_t>(k)]) / draws;
    EXPECT_NEAR(empirical, model.pmf(k), 0.01);
  }
}

TEST(PopulationModel, ValidatesArguments) {
  EXPECT_THROW(PopulationModel(5.0, 1.0, 0, 10), support::PreconditionError);
  EXPECT_THROW(PopulationModel(5.0, 1.0, 10, 5), support::PreconditionError);
  EXPECT_THROW(PopulationModel(5.0, -1.0, 1, 10), support::PreconditionError);
  // All the mass far outside the support.
  EXPECT_THROW(PopulationModel(1000.0, 0.0, 1, 10),
               support::PreconditionError);
}

DynamicGameConfig default_config() {
  DynamicGameConfig config;
  config.params.reward = 100.0;
  config.params.fork_rate = 0.2;
  config.params.edge_capacity = 8.0;
  config.prices = {2.0, 1.0};
  config.budget = 100.0;
  config.edge_success = 0.5;  // the paper's Eq. (26) instance
  return config;
}

TEST(DynamicUtility, DegeneratePopulationMatchesStaticGame) {
  // With N fixed at n, the dynamic utility is the connected-mode utility.
  DynamicGameConfig config = default_config();
  const PopulationModel fixed(5.0, 0.0, 1, 10);
  const MinerRequest own{2.0, 3.0};
  const MinerRequest others{1.5, 2.5};
  MinerEnv env;
  env.reward = config.params.reward;
  env.fork_rate = config.params.fork_rate;
  env.edge_success = config.edge_success;
  env.prices = config.prices;
  env.budget = config.budget;
  env.others = {4.0 * others.edge, 4.0 * others.cloud};
  EXPECT_NEAR(dynamic_miner_utility(config, fixed, own, others),
              miner_utility(env, own), 1e-10);
}

TEST(DynamicGradient, MatchesFiniteDifferences) {
  const DynamicGameConfig config = default_config();
  const PopulationModel population = PopulationModel::around(8.0, 2.0);
  support::Rng rng{42};
  for (int trial = 0; trial < 50; ++trial) {
    const MinerRequest own{rng.uniform(0.2, 10.0), rng.uniform(0.2, 10.0)};
    const MinerRequest others{rng.uniform(0.2, 10.0), rng.uniform(0.2, 10.0)};
    const auto [du_de, du_dc] =
        dynamic_miner_gradient(config, population, own, others);
    const double step = 1e-6;
    const double fd_e =
        (dynamic_miner_utility(config, population, {own.edge + step, own.cloud}, others) -
         dynamic_miner_utility(config, population, {own.edge - step, own.cloud}, others)) /
        (2.0 * step);
    const double fd_c =
        (dynamic_miner_utility(config, population, {own.edge, own.cloud + step}, others) -
         dynamic_miner_utility(config, population, {own.edge, own.cloud - step}, others)) /
        (2.0 * step);
    EXPECT_NEAR(du_de, fd_e, 1e-4 * (1.0 + std::abs(fd_e)));
    EXPECT_NEAR(du_dc, fd_c, 1e-4 * (1.0 + std::abs(fd_c)));
  }
}

TEST(DynamicBestResponse, StaysWithinBudget) {
  const DynamicGameConfig config = default_config();
  const PopulationModel population = PopulationModel::around(8.0, 2.0);
  const MinerRequest response =
      dynamic_best_response(config, population, {1.0, 5.0});
  EXPECT_GE(response.edge, 0.0);
  EXPECT_GE(response.cloud, 0.0);
  EXPECT_LE(request_cost(response, config.prices), config.budget + 1e-6);
}

TEST(DynamicEquilibrium, DegeneratePopulationMatchesFixedNSolver) {
  DynamicGameConfig config = default_config();
  const PopulationModel fixed(5.0, 0.0, 1, 10);
  const auto dynamic = solve_dynamic_symmetric(config, fixed);
  ASSERT_TRUE(dynamic.converged);
  NetworkParams params = config.params;
  params.edge_success = config.edge_success;
  const auto static_eq = solve_followers_symmetric(
      params, config.prices, config.budget, 5, EdgeMode::kConnected);
  ASSERT_TRUE(static_eq.converged);
  EXPECT_NEAR(dynamic.request.edge, static_eq.request().edge, 2e-3);
  EXPECT_NEAR(dynamic.request.cloud, static_eq.request().cloud, 2e-2);
}

TEST(DynamicEquilibrium, UncertaintyInflatesEdgeDemand) {
  // Paper Sec. V / Fig. 9a: population uncertainty renders miners more
  // aggressive at the ESP than the fixed-N benchmark. (The effect is a
  // Jensen gap of E[(N-1)/N^2] over the fixed value; it requires the
  // population to stay clear of the N = 1 boundary, as in the paper's
  // mu = 10, sigma^2 = 4 toy.)
  const DynamicGameConfig config = default_config();
  const PopulationModel uncertain = PopulationModel::around(10.0, 2.0);
  const auto dynamic = solve_dynamic_symmetric(config, uncertain);
  ASSERT_TRUE(dynamic.converged);
  const MinerRequest fixed = fixed_population_benchmark(config, uncertain);
  EXPECT_GT(dynamic.request.edge, fixed.edge);
}

TEST(DynamicEquilibrium, LargerVarianceMoreEspProne) {
  // Paper Fig. 9b: the edge request grows with the population variance.
  const DynamicGameConfig config = default_config();
  double previous = 0.0;
  for (double stddev : {0.5, 1.5, 3.0}) {
    const PopulationModel population = PopulationModel::around(10.0, stddev);
    const auto eq = solve_dynamic_symmetric(config, population);
    ASSERT_TRUE(eq.converged);
    EXPECT_GT(eq.request.edge, previous);
    previous = eq.request.edge;
  }
}

TEST(DynamicEquilibrium, CanExceedStandaloneCapacity) {
  // Paper Sec. V: expected total edge demand can exceed E_max because no
  // shared-constraint coordination is possible under population
  // uncertainty.
  DynamicGameConfig config = default_config();
  config.params.edge_capacity = 4.0;
  const PopulationModel population = PopulationModel::around(6.0, 2.5);
  const auto eq = solve_dynamic_symmetric(config, population);
  ASSERT_TRUE(eq.converged);
  EXPECT_NEAR(eq.expected_total_edge, population.mean() * eq.request.edge,
              1e-9);
  EXPECT_TRUE(eq.exceeds_capacity);
}

TEST(DynamicSolve, ValidatesConfig) {
  DynamicGameConfig config = default_config();
  config.budget = 0.0;
  const PopulationModel population = PopulationModel::around(5.0, 1.0);
  EXPECT_THROW((void)solve_dynamic_symmetric(config, population),
               support::PreconditionError);
  config = default_config();
  EXPECT_THROW((void)solve_dynamic_symmetric(config, population, 1.5),
               support::PreconditionError);
}

}  // namespace
}  // namespace hecmine::core
