// End-to-end integration tests: the Stackelberg equilibrium computed by the
// game layer is fed to the offloading network + PoW simulator, and the
// empirical outcomes must agree with the theory; the paper's cross-mode
// claims are checked at full-pipeline level.
#include <gtest/gtest.h>

#include <cmath>

#include "core/closed_forms.hpp"
#include "core/oracle.hpp"
#include "core/sp.hpp"
#include "core/winning.hpp"
#include "net/network.hpp"

namespace hecmine {
namespace {

core::NetworkParams default_params() {
  core::NetworkParams params;
  params.reward = 100.0;
  params.fork_rate = 0.2;
  params.edge_success = 0.9;
  params.edge_capacity = 8.0;
  params.cost_edge = 1.0;
  params.cost_cloud = 0.4;
  return params;
}

core::SpSolveOptions fast_options() {
  core::SpSolveOptions options;
  options.grid_points = 24;
  options.max_rounds = 30;
  options.tolerance = 1e-4;
  return options;
}

TEST(Integration, EquilibriumRequestsSurviveTheRealNetwork) {
  // Solve the full game, then replay the equilibrium on the simulator:
  // empirical win rates must match the theoretical winning probabilities
  // and SP revenues must match prices x units.
  const core::NetworkParams params = default_params();
  const auto equilibrium = core::solve_leader_stage_homogeneous(
      params, 40.0, 5, core::EdgeMode::kConnected, fast_options());
  const std::vector<core::MinerRequest> profile =
      equilibrium.followers.expanded();
  const core::Totals totals = core::aggregate(profile);

  net::EdgePolicy policy;
  policy.mode = core::EdgeMode::kConnected;
  policy.success_prob = params.edge_success;
  net::MiningNetwork network(params, policy, equilibrium.prices, 101);
  const std::size_t rounds = 200000;
  network.run_rounds(profile, rounds);

  for (std::size_t i = 0; i < profile.size(); ++i) {
    const double expected = core::win_prob_connected(
        profile[i], totals, params.fork_rate, params.edge_success);
    EXPECT_NEAR(static_cast<double>(network.stats().wins[i]) /
                    static_cast<double>(rounds),
                expected, 0.01);
  }
  const double revenue_per_round_edge =
      equilibrium.prices.edge * totals.edge;
  EXPECT_NEAR(network.stats().revenue_edge,
              revenue_per_round_edge * rounds, 1e-5 * rounds);
  // SP profit per round at the equilibrium equals the theoretical V_e.
  const double profit_edge_per_round =
      network.stats().revenue_edge / rounds - params.cost_edge * totals.edge;
  EXPECT_NEAR(profit_edge_per_round, equilibrium.profits.edge, 1e-6);
}

TEST(Integration, StandaloneEquilibriumNeverRejects) {
  // The GNEP keeps total edge demand within E_max, so replaying the
  // equilibrium through the standalone admission policy must yield zero
  // rejections.
  const core::NetworkParams params = default_params();
  const auto equilibrium = core::solve_leader_stage_homogeneous(
      params, 200.0, 5, core::EdgeMode::kStandalone, fast_options());
  std::vector<core::MinerRequest> profile = equilibrium.followers.expanded();
  // Guard the floating-point boundary at a binding cap (E sits exactly on
  // E_max, where accumulation error in admission could reject a request).
  const double total_edge = 5.0 * equilibrium.followers.request().edge;
  if (total_edge > params.edge_capacity * (1.0 - 1e-9)) {
    const double shrink = params.edge_capacity * (1.0 - 1e-9) / total_edge;
    for (auto& request : profile) request.edge *= shrink;
  }

  net::EdgePolicy policy;
  policy.mode = core::EdgeMode::kStandalone;
  policy.capacity = params.edge_capacity;
  net::MiningNetwork network(params, policy, equilibrium.prices, 102);
  network.run_rounds(profile, 20000);
  EXPECT_EQ(network.stats().rejections, 0u);
}

TEST(Integration, SoldUnitsRoughlyEqualAcrossModesWithLargeBudgets) {
  // Paper Sec. VI-B: with sufficient budgets the total sold units are
  // approximately equal across edge operation modes (S depends only on
  // P_c in both).
  const core::NetworkParams params = default_params();
  const auto connected = core::solve_leader_stage_homogeneous(
      params, 2000.0, 5, core::EdgeMode::kConnected, fast_options());
  const auto standalone = core::solve_leader_stage_homogeneous(
      params, 2000.0, 5, core::EdgeMode::kStandalone, fast_options());
  const double total_connected = 5.0 * connected.followers.request().total();
  const double total_standalone = 5.0 * standalone.followers.request().total();
  EXPECT_NEAR(total_connected, total_standalone,
              0.35 * std::max(total_connected, total_standalone));
}

TEST(Integration, ConnectedModeDiscouragesEdgePurchases) {
  // Paper conclusion: the connected mode discourages miners from buying
  // ESP units relative to standalone, at identical prices. (Compared with
  // a non-binding capacity so the mode effect — h < 1 versus h = 1 — is
  // isolated from the cap.)
  core::NetworkParams params = default_params();
  params.edge_capacity = 100.0;
  const core::Prices prices{2.0, 1.0};
  const auto connected = core::solve_followers_symmetric(
      params, prices, 60.0, 5, core::EdgeMode::kConnected);
  const auto standalone = core::solve_followers_symmetric(
      params, prices, 60.0, 5, core::EdgeMode::kStandalone);
  ASSERT_TRUE(connected.converged);
  ASSERT_TRUE(standalone.converged);
  // Standalone (h = 1) demand, even capped at E_max/n, exceeds the
  // connected-mode request.
  EXPECT_GT(standalone.request().edge, connected.request().edge);
}

TEST(Integration, WelfareBoundedByBudgetsThenGrowsWithReward) {
  // Paper Sec. VI-B: SP welfare is capped by total miner budgets for small
  // budgets; once budgets are ample, welfare scales with the reward R.
  core::NetworkParams params = default_params();
  const int n = 5;
  const double small_budget = 5.0;
  const auto tight = core::solve_leader_stage_homogeneous(
      params, small_budget, n, core::EdgeMode::kConnected, fast_options());
  const double tight_welfare = tight.profits.edge + tight.profits.cloud;
  EXPECT_LE(tight_welfare, small_budget * n + 1e-6);

  const auto base = core::solve_leader_stage_homogeneous(
      params, 1e5, n, core::EdgeMode::kConnected, fast_options());
  core::NetworkParams rich_params = params;
  rich_params.reward = 2.0 * params.reward;
  const auto rich = core::solve_leader_stage_homogeneous(
      rich_params, 1e5, n, core::EdgeMode::kConnected, fast_options());
  EXPECT_GT(rich.profits.edge + rich.profits.cloud,
            base.profits.edge + base.profits.cloud);
}

TEST(Integration, ForkModelRoundTripsDelayAndRate) {
  const core::ForkModel model(12.6);
  for (double delay : {0.1, 1.0, 5.0, 20.0}) {
    const double beta = model.fork_rate(delay);
    EXPECT_NEAR(model.delay_for_rate(beta), delay, 1e-9);
  }
  // Near-linearity for small delays (the Bitcoin CDF regime of Fig. 2).
  EXPECT_NEAR(model.fork_rate(0.5), 0.5 / 12.6, 0.002);
}

}  // namespace
}  // namespace hecmine
