// Tests for numerics/roots.
#include "numerics/roots.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"

namespace hecmine::num {
namespace {

using support::ConvergenceError;
using support::PreconditionError;

TEST(Bisect, FindsPolynomialRoot) {
  const auto f = [](double x) { return x * x - 2.0; };
  EXPECT_NEAR(bisect(f, 0.0, 2.0), std::sqrt(2.0), 1e-10);
}

TEST(Bisect, HandlesRootAtEndpoint) {
  const auto f = [](double x) { return x; };
  EXPECT_DOUBLE_EQ(bisect(f, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(bisect(f, -1.0, 0.0), 0.0);
}

TEST(Bisect, RejectsBadBracket) {
  const auto f = [](double x) { return x * x + 1.0; };
  EXPECT_THROW((void)bisect(f, -1.0, 1.0), PreconditionError);
  EXPECT_THROW((void)bisect(f, 1.0, 0.0), PreconditionError);
}

TEST(Bisect, RespectsIterationBudget) {
  RootOptions options;
  options.max_iterations = 2;
  options.tolerance = 1e-300;
  const auto f = [](double x) { return x - 0.123456789; };
  EXPECT_THROW((void)bisect(f, 0.0, 1.0, options), ConvergenceError);
}

TEST(BrentRoot, FindsTranscendentalRoot) {
  const auto f = [](double x) { return std::cos(x) - x; };
  const double root = brent_root(f, 0.0, 1.0);
  EXPECT_NEAR(f(root), 0.0, 1e-12);
  EXPECT_NEAR(root, 0.7390851332151607, 1e-9);
}

TEST(BrentRoot, MatchesBisectOnPolynomial) {
  const auto f = [](double x) { return x * x * x - 7.0; };
  EXPECT_NEAR(brent_root(f, 0.0, 3.0), std::cbrt(7.0), 1e-10);
}

TEST(BrentRoot, HandlesSteepFunctions) {
  const auto f = [](double x) { return std::exp(20.0 * x) - 5.0; };
  const double root = brent_root(f, -1.0, 1.0);
  EXPECT_NEAR(root, std::log(5.0) / 20.0, 1e-10);
}

TEST(BrentRoot, RejectsNoSignChange) {
  const auto f = [](double) { return 1.0; };
  EXPECT_THROW((void)brent_root(f, 0.0, 1.0), PreconditionError);
}

TEST(DecreasingRootUnbounded, ExpandsBracket) {
  // Root far beyond the initial bracket guess.
  const auto f = [](double x) { return 1000.0 - x; };
  EXPECT_NEAR(decreasing_root_unbounded(f, 0.0, 1.0), 1000.0, 1e-8);
}

TEST(DecreasingRootUnbounded, ReturnsLoWhenAlreadyZero) {
  const auto f = [](double x) { return -x; };
  EXPECT_DOUBLE_EQ(decreasing_root_unbounded(f, 0.0, 1.0), 0.0);
}

TEST(DecreasingRootUnbounded, RejectsNegativeStart) {
  const auto f = [](double x) { return -1.0 - x; };
  EXPECT_THROW((void)decreasing_root_unbounded(f, 0.0, 1.0),
               PreconditionError);
}

TEST(DecreasingRootUnbounded, ThrowsWhenNoRootExists) {
  const auto f = [](double) { return 1.0; };  // never crosses zero
  EXPECT_THROW((void)decreasing_root_unbounded(f, 0.0, 1.0),
               ConvergenceError);
}

}  // namespace
}  // namespace hecmine::num
