// Tests for core/closed_forms: Theorem 3, Corollary 1, Table II and their
// agreement with the numerical solvers.
#include "core/closed_forms.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/equilibrium.hpp"
#include "core/miner.hpp"
#include "support/error.hpp"

namespace hecmine::core {
namespace {

NetworkParams default_params() {
  NetworkParams params;
  params.reward = 100.0;
  params.fork_rate = 0.2;
  params.edge_success = 0.9;
  params.edge_capacity = 8.0;
  params.cost_edge = 1.0;
  params.cost_cloud = 0.4;
  return params;
}

TEST(MixedPriceBound, MatchesFormula) {
  const NetworkParams params = default_params();
  const double bound = mixed_strategy_cloud_price_bound(params, 2.0);
  EXPECT_NEAR(bound, (1.0 - 0.2) * 2.0 / (1.0 - 0.2 + 0.9 * 0.2), 1e-14);
}

TEST(BudgetThreshold, MatchesSpendAtUnconstrainedNe) {
  // The threshold is the per-miner spend at the Corollary-1 point, so a
  // miner given exactly that budget is on the boundary of both branches.
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  const int n = 5;
  const double threshold = homogeneous_budget_threshold(params, n);
  const MinerRequest sufficient = homogeneous_sufficient_request(params, prices, n);
  EXPECT_NEAR(request_cost(sufficient, prices), threshold, 1e-9);
}

TEST(Theorem3, BindingRequestExhaustsBudgetExactly) {
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  for (double budget : {5.0, 10.0, 12.0}) {
    const MinerRequest request =
        homogeneous_binding_request(params, prices, budget, 5);
    EXPECT_NEAR(request_cost(request, prices), budget, 1e-10);
    EXPECT_GT(request.edge, 0.0);
    EXPECT_GT(request.cloud, 0.0);
  }
}

TEST(Theorem3, BindingRequestIsBestResponseFixedPoint) {
  // Each miner's closed-form strategy must be a best response to n-1
  // copies of itself.
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  const int n = 5;
  const double budget = 10.0;
  ASSERT_LT(budget, homogeneous_budget_threshold(params, n));
  const MinerRequest ne = homogeneous_binding_request(params, prices, budget, n);
  MinerEnv env;
  env.reward = params.reward;
  env.fork_rate = params.fork_rate;
  env.edge_success = params.edge_success;
  env.prices = prices;
  env.budget = budget;
  env.others = {(n - 1.0) * ne.edge, (n - 1.0) * ne.cloud};
  const MinerRequest response = miner_best_response(env);
  EXPECT_NEAR(response.edge, ne.edge, 1e-6);
  EXPECT_NEAR(response.cloud, ne.cloud, 1e-6);
}

TEST(Theorem3, MatchesSymmetricSolver) {
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  const double budget = 8.0;
  const int n = 5;
  const auto numeric = solve_symmetric_connected(params, prices, budget, n);
  ASSERT_TRUE(numeric.converged);
  const MinerRequest closed =
      homogeneous_binding_request(params, prices, budget, n);
  EXPECT_NEAR(numeric.request.edge, closed.edge, 1e-6);
  EXPECT_NEAR(numeric.request.cloud, closed.cloud, 1e-6);
}

TEST(Theorem3, RequiresMixedPriceCondition) {
  const NetworkParams params = default_params();
  // P_c above the bound: the closed form must refuse.
  const double pe = 2.0;
  const double bad_pc = mixed_strategy_cloud_price_bound(params, pe) * 1.01;
  EXPECT_THROW(
      (void)homogeneous_binding_request(params, {pe, bad_pc}, 10.0, 5),
      support::PreconditionError);
  EXPECT_THROW((void)homogeneous_binding_request(params, {1.0, 2.0}, 10.0, 5),
               support::PreconditionError);
}

TEST(Corollary1, SufficientRequestSatisfiesFoc) {
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  const int n = 5;
  const MinerRequest ne = homogeneous_sufficient_request(params, prices, n);
  MinerEnv env;
  env.reward = params.reward;
  env.fork_rate = params.fork_rate;
  env.edge_success = params.edge_success;
  env.prices = prices;
  env.budget = 1e9;
  env.others = {(n - 1.0) * ne.edge, (n - 1.0) * ne.cloud};
  const auto [du_de, du_dc] = miner_utility_gradient(env, ne);
  EXPECT_NEAR(du_de, 0.0, 1e-9);
  EXPECT_NEAR(du_dc, 0.0, 1e-9);
}

TEST(Corollary1, MatchesSymmetricSolverWithLargeBudget) {
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  const int n = 5;
  const auto numeric = solve_symmetric_connected(params, prices, 1e5, n);
  ASSERT_TRUE(numeric.converged);
  const MinerRequest closed = homogeneous_sufficient_request(params, prices, n);
  EXPECT_NEAR(numeric.request.edge, closed.edge, 1e-5);
  EXPECT_NEAR(numeric.request.cloud, closed.cloud, 1e-5);
}

TEST(Corollary1, PaperPrintedFormIsTheHEqualOneCase) {
  NetworkParams params = default_params();
  params.edge_success = 1.0;
  const Prices prices{2.0, 1.0};
  const int n = 5;
  const MinerRequest ne = homogeneous_sufficient_request(params, prices, n);
  const double beta = params.fork_rate, r = params.reward;
  const double dn = n;
  EXPECT_NEAR(ne.edge, beta * r * (dn - 1.0) / (dn * dn * (2.0 - 1.0)), 1e-12);
  // c* = R(n-1)[(1-beta) P_e - P_c] / (n^2 P_c (P_e - P_c)).
  EXPECT_NEAR(ne.cloud,
              r * (dn - 1.0) * ((1.0 - beta) * 2.0 - 1.0) /
                  (dn * dn * 1.0 * (2.0 - 1.0)),
              1e-12);
}

TEST(ConnectedSelector, PicksBranchByThreshold) {
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  const int n = 5;
  const double threshold = homogeneous_budget_threshold(params, n);
  const MinerRequest below =
      homogeneous_connected_request(params, prices, 0.5 * threshold, n);
  const MinerRequest binding =
      homogeneous_binding_request(params, prices, 0.5 * threshold, n);
  EXPECT_NEAR(below.edge, binding.edge, 1e-12);
  const MinerRequest above =
      homogeneous_connected_request(params, prices, 2.0 * threshold, n);
  const MinerRequest sufficient = homogeneous_sufficient_request(params, prices, n);
  EXPECT_NEAR(above.edge, sufficient.edge, 1e-12);
}

TEST(EdgeOnly, TullockContestCappedByBudget) {
  const NetworkParams params = default_params();
  const Prices prices{2.0, 5.0};
  const int n = 5;
  const MinerRequest rich =
      homogeneous_edge_only_request(params, prices, 1e6, n);
  const double prize = params.reward * (1.0 - 0.2 + 0.9 * 0.2);
  EXPECT_NEAR(rich.edge, prize * 4.0 / (25.0 * 2.0), 1e-12);
  EXPECT_DOUBLE_EQ(rich.cloud, 0.0);
  const MinerRequest poor =
      homogeneous_edge_only_request(params, prices, 1.0, n);
  EXPECT_NEAR(poor.edge, 0.5, 1e-12);  // budget / P_e
}

TEST(StandaloneClosedForm, SlackCapMatchesCorollary1AtHEqualOne) {
  NetworkParams params = default_params();
  params.edge_capacity = 1e6;
  const Prices prices{2.0, 1.0};
  const int n = 5;
  const auto standalone = standalone_sufficient_request(params, prices, n);
  EXPECT_FALSE(standalone.cap_active);
  NetworkParams h1 = params;
  h1.edge_success = 1.0;
  const MinerRequest expectation = homogeneous_sufficient_request(h1, prices, n);
  EXPECT_NEAR(standalone.request.edge, expectation.edge, 1e-10);
  EXPECT_NEAR(standalone.request.cloud, expectation.cloud, 1e-10);
}

TEST(StandaloneClosedForm, BindingCapMatchesGnepSolver) {
  const NetworkParams params = default_params();  // E_max = 8
  const Prices prices{2.0, 1.0};
  const int n = 5;
  const auto closed = standalone_sufficient_request(params, prices, n);
  ASSERT_TRUE(closed.cap_active);
  const auto numeric = solve_symmetric_standalone(params, prices, 1e5, n);
  ASSERT_TRUE(numeric.converged);
  EXPECT_NEAR(closed.request.edge, numeric.request.edge, 1e-4);
  EXPECT_NEAR(closed.request.cloud, numeric.request.cloud, 1e-3);
  EXPECT_NEAR(closed.surcharge, numeric.surcharge, 1e-3);
  // Total edge demand hits the cap exactly.
  EXPECT_NEAR(5.0 * closed.request.edge, params.edge_capacity, 1e-10);
}

TEST(StandaloneClosedForm, GrandTotalIndependentOfCap) {
  // S depends only on P_c (paper: standalone changes the edge/cloud split,
  // not the total), so tightening the cap must keep e + c constant.
  const Prices prices{2.0, 1.0};
  const int n = 5;
  NetworkParams loose = default_params();
  loose.edge_capacity = 1e6;
  NetworkParams tight = default_params();
  tight.edge_capacity = 5.0;
  const auto a = standalone_sufficient_request(loose, prices, n);
  const auto b = standalone_sufficient_request(tight, prices, n);
  EXPECT_NEAR(a.request.total(), b.request.total(), 1e-9);
  EXPECT_GT(a.request.edge, b.request.edge);
}

TEST(StandaloneSpClosedForm, MatchesDerivedExpressions) {
  const NetworkParams params = default_params();
  const int n = 5;
  const auto sp = standalone_sp_closed_form(params, n);
  const double beta = params.fork_rate;
  const double scale = params.reward * 4.0 / 5.0;
  EXPECT_NEAR(sp.prices.cloud,
              std::sqrt(params.cost_cloud * (1.0 - beta) * scale /
                        params.edge_capacity),
              1e-12);
  EXPECT_NEAR(sp.prices.edge,
              sp.prices.cloud + beta * scale / params.edge_capacity, 1e-12);
  EXPECT_TRUE(sp.valid);
  EXPECT_GT(sp.profit_edge, 0.0);
  EXPECT_GT(sp.profit_cloud, 0.0);
}

TEST(StandaloneSpClosedForm, CspPriceIsOptimalAgainstDemandCurve) {
  // V_c(P_c) = (P_c - C_c)(S(P_c) - E_max) with S = (1-beta)R(n-1)/(n P_c):
  // probe prices around P_c* must not beat it.
  const NetworkParams params = default_params();
  const int n = 5;
  const auto sp = standalone_sp_closed_form(params, n);
  const double scale = (1.0 - params.fork_rate) * params.reward * 4.0 / 5.0;
  const auto profit = [&](double pc) {
    return (pc - params.cost_cloud) * (scale / pc - params.edge_capacity);
  };
  const double best = profit(sp.prices.cloud);
  for (double factor : {0.8, 0.9, 1.1, 1.25}) {
    EXPECT_LE(profit(sp.prices.cloud * factor), best + 1e-10);
  }
}

TEST(ClosedForms, ValidateArguments) {
  const NetworkParams params = default_params();
  EXPECT_THROW((void)homogeneous_budget_threshold(params, 1),
               support::PreconditionError);
  EXPECT_THROW(
      (void)homogeneous_sufficient_request(params, {2.0, 1.0}, 1),
      support::PreconditionError);
  EXPECT_THROW(
      (void)homogeneous_binding_request(params, {2.0, 1.0}, 0.0, 5),
      support::PreconditionError);
  EXPECT_THROW((void)standalone_sufficient_request(params, {1.0, 2.0}, 5),
               support::PreconditionError);
}

}  // namespace
}  // namespace hecmine::core
