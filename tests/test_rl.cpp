// Tests for the RL framework (paper Sec. VI-C): learners find optimal arms,
// trained strategies track the analytic equilibria, and the adaptive
// pricing loop moves prices toward profitability.
#include <gtest/gtest.h>

#include <cmath>

#include "core/dynamic.hpp"
#include "core/oracle.hpp"
#include "core/sp.hpp"
#include "rl/fictitious.hpp"
#include "rl/learner.hpp"
#include "rl/trainer.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace hecmine::rl {
namespace {

core::NetworkParams default_params() {
  core::NetworkParams params;
  params.reward = 100.0;
  params.fork_rate = 0.2;
  params.edge_success = 0.9;
  params.edge_capacity = 20.0;
  params.cost_edge = 1.0;
  params.cost_cloud = 0.4;
  return params;
}

TEST(ActionGrid, CoversBudgetPolytope) {
  const auto grid = ActionGrid::budget_grid({2.0, 1.0}, 10.0, 5, 5);
  EXPECT_EQ(grid.size(), 25u);
  for (const auto& action : grid.actions) {
    EXPECT_GE(action.edge, 0.0);
    EXPECT_GE(action.cloud, 0.0);
    EXPECT_LE(core::request_cost(action, {2.0, 1.0}), 10.0 + 1e-9);
  }
  // The extremes are present: all-edge and all-cloud.
  bool has_all_edge = false, has_all_cloud = false;
  for (const auto& action : grid.actions) {
    if (action.edge > 4.99 && action.cloud < 1e-9) has_all_edge = true;
    if (action.cloud > 9.99 && action.edge < 1e-9) has_all_cloud = true;
  }
  EXPECT_TRUE(has_all_edge);
  EXPECT_TRUE(has_all_cloud);
}

TEST(ActionGrid, ValidatesInput) {
  EXPECT_THROW((void)ActionGrid::budget_grid({0.0, 1.0}, 10.0, 5, 5),
               support::PreconditionError);
  EXPECT_THROW((void)ActionGrid::budget_grid({1.0, 1.0}, 0.0, 5, 5),
               support::PreconditionError);
  EXPECT_THROW((void)ActionGrid::budget_grid({1.0, 1.0}, 10.0, 1, 5),
               support::PreconditionError);
}

TEST(BanditLearner, FindsBestArmOnStationaryBandit) {
  support::Rng rng{91};
  const std::vector<double> means{1.0, 3.0, 2.0, -1.0};
  BanditLearner learner(means.size(), 0.3, 0.1);
  for (int step = 0; step < 5000; ++step) {
    const std::size_t arm = learner.select(rng);
    learner.update(arm, means[arm] + rng.normal(0.0, 0.5));
    learner.decay_epsilon(0.999, 0.01);
  }
  EXPECT_EQ(learner.best_action(), 1u);
}

TEST(BanditLearner, FirstSampleInitializesValue) {
  BanditLearner learner(2, 0.0, 0.1);
  learner.update(0, 10.0);
  EXPECT_DOUBLE_EQ(learner.values()[0], 10.0);
  learner.update(0, 0.0);
  EXPECT_DOUBLE_EQ(learner.values()[0], 9.0);  // 10 + 0.1 (0 - 10)
}

TEST(BanditLearner, EpsilonDecayRespectsFloor) {
  BanditLearner learner(2, 0.5, 0.1);
  for (int i = 0; i < 1000; ++i) learner.decay_epsilon(0.5, 0.07);
  EXPECT_DOUBLE_EQ(learner.epsilon(), 0.07);
}

TEST(BanditLearner, ValidatesArguments) {
  EXPECT_THROW(BanditLearner(0, 0.1, 0.1), support::PreconditionError);
  EXPECT_THROW(BanditLearner(2, 1.5, 0.1), support::PreconditionError);
  EXPECT_THROW(BanditLearner(2, 0.1, 0.0), support::PreconditionError);
  BanditLearner learner(2, 0.1, 0.1);
  EXPECT_THROW(learner.update(5, 1.0), support::PreconditionError);
}

TEST(TrainMiners, FixedPopulationConvergesNearSymmetricNe) {
  // Degenerate population at n = 5: the learned strategies should land
  // within about one grid step of the analytic symmetric NE.
  const core::NetworkParams params = default_params();
  const core::Prices prices{2.0, 1.0};
  const double budget = 60.0;
  const core::PopulationModel fixed(5.0, 0.0, 1, 5);
  TrainerConfig config;
  config.blocks = 4000;
  config.edge_steps = 21;
  config.cloud_steps = 21;
  config.edge_success = params.edge_success;
  config.feedback = FeedbackMode::kExpected;
  const auto trained = train_miners(params, prices, budget, fixed, config, 92);

  core::NetworkParams h_params = params;
  const auto analytic = core::solve_followers_symmetric(
      h_params, prices, budget, 5, core::EdgeMode::kConnected);
  ASSERT_TRUE(analytic.converged);
  const double edge_step = (budget / prices.edge) / 20.0;
  const double cloud_step = (budget / prices.cloud) / 20.0;
  EXPECT_NEAR(trained.mean.edge, analytic.request().edge, 1.5 * edge_step);
  EXPECT_NEAR(trained.mean.cloud, analytic.request().cloud, 2.5 * cloud_step);
}

TEST(TrainMiners, UncertainPopulationTracksDynamicEquilibrium) {
  // The RL counterpart of Fig. 9: learners facing a random miner count
  // converge near the analytic dynamic symmetric equilibrium (Sec. V).
  // (The uncertain-vs-fixed *gap* itself is a few percent — below any
  // reasonable action-grid resolution — so the ordering claim is verified
  // at model level in test_core_population_dynamic; here we check the RL
  // framework tracks the model, which is what the paper's Fig. 9 shows.)
  const core::NetworkParams params = default_params();
  const core::Prices prices{2.0, 1.0};
  const double budget = 12.0;
  TrainerConfig config;
  config.blocks = 8000;
  config.edge_steps = 13;
  config.cloud_steps = 13;
  config.epsilon_decay = 0.9995;
  config.epsilon_floor = 0.05;
  config.edge_success = 0.5;
  const core::PopulationModel uncertain =
      core::PopulationModel::around(10.0, 2.0);
  const auto learned =
      train_miners(params, prices, budget, uncertain, config, 93);

  core::DynamicGameConfig dyn;
  dyn.params = params;
  dyn.prices = prices;
  dyn.budget = budget;
  dyn.edge_success = 0.5;
  const auto analytic = core::solve_dynamic_symmetric(dyn, uncertain);
  ASSERT_TRUE(analytic.converged);
  const double edge_step = (budget / prices.edge) / 12.0;
  EXPECT_NEAR(learned.mean.edge, analytic.request.edge, 2.0 * edge_step);
  // The utility surface is nearly flat in the cloud direction, so the
  // greedy arm wanders inside a wide near-optimal band; assert epsilon-
  // equilibrium quality instead of coordinates: no profitable deviation
  // beyond a few percent of the achievable utility.
  const double at_learned =
      core::dynamic_miner_utility(dyn, uncertain, learned.mean, learned.mean);
  const core::MinerRequest best =
      core::dynamic_best_response(dyn, uncertain, learned.mean);
  const double at_best =
      core::dynamic_miner_utility(dyn, uncertain, best, learned.mean);
  // Threshold reflects the action-grid granularity: even the best grid
  // point is an epsilon-best response against a continuum deviation.
  EXPECT_LE(at_best - at_learned, 0.1 * std::abs(at_best) + 0.3);
}

TEST(TrainMiners, RealizedFeedbackStaysInTheSameRegion) {
  // Realized (race-sampled) rewards are noisy; the learned strategy should
  // still land in the neighbourhood of the expected-feedback result.
  const core::NetworkParams params = default_params();
  const core::Prices prices{2.0, 1.0};
  const double budget = 60.0;
  const core::PopulationModel fixed(4.0, 0.0, 1, 4);
  TrainerConfig expected_config;
  expected_config.blocks = 3000;
  expected_config.edge_success = 0.9;
  TrainerConfig realized_config = expected_config;
  realized_config.blocks = 30000;
  realized_config.feedback = FeedbackMode::kRealized;
  realized_config.learning_rate = 0.05;
  const auto expected =
      train_miners(params, prices, budget, fixed, expected_config, 94);
  const auto realized =
      train_miners(params, prices, budget, fixed, realized_config, 94);
  const double scale = budget / prices.cloud;
  EXPECT_NEAR(realized.mean.total(), expected.mean.total(), 0.35 * scale);
}

TEST(TrainMiners, ValidatesArguments) {
  const core::NetworkParams params = default_params();
  const core::PopulationModel fixed(3.0, 0.0, 1, 3);
  TrainerConfig config;
  config.blocks = 0;
  EXPECT_THROW(
      (void)train_miners(params, {2.0, 1.0}, 10.0, fixed, config, 1),
      support::PreconditionError);
  config = TrainerConfig{};
  EXPECT_THROW(
      (void)train_miners(params, {0.0, 1.0}, 10.0, fixed, config, 1),
      support::PreconditionError);
}

TEST(AdaptivePricing, FictitiousPlayDemandRecoversTheCspReaction) {
  // The Sec. VI-C fixed point, tested with learned-but-continuous demand:
  // holding the ESP at its analytic equilibrium price, the CSP's profit
  // hill over *fictitious-play* demand peaks near the analytic reaction.
  // (Grid bandits cannot support this test — their action grid rescales
  // with 1/price, quantizing demand differently at every probe; the
  // aggregate-belief learner has continuous actions.)
  const core::NetworkParams params = default_params();
  const core::PopulationModel population(5.0, 0.0, 1, 5);
  const double budget = 40.0;

  core::SpSolveOptions sp_options;
  sp_options.grid_points = 24;
  sp_options.max_rounds = 25;
  const auto analytic = core::solve_leader_stage_homogeneous(
      params, budget, 5, core::EdgeMode::kConnected, sp_options);

  const auto learned_cloud_profit = [&](double pc) {
    FictitiousPlayConfig fp;
    fp.blocks = 400;
    fp.edge_success = params.edge_success;
    const auto played = run_fictitious_play(
        params, {analytic.prices.edge, pc}, budget, population, fp, 321);
    return (pc - params.cost_cloud) * 5.0 * played.mean.cloud;
  };
  double best_pc = 0.0, best_profit = -1e18;
  for (double pc = 0.6; pc <= 3.4; pc += 0.2) {
    const double profit = learned_cloud_profit(pc);
    if (profit > best_profit) {
      best_profit = profit;
      best_pc = pc;
    }
  }
  EXPECT_NEAR(best_pc, analytic.prices.cloud,
              0.25 * analytic.prices.cloud + 0.2);
}

TEST(AdaptivePricing, MovesTowardProfitablePrices) {
  // Starting from near-cost prices, both SPs should raise prices and end
  // with positive profit estimates.
  const core::NetworkParams params = default_params();
  const core::PopulationModel population(4.0, 0.0, 1, 4);
  AdaptivePricingConfig config;
  config.trainer.blocks = 800;
  config.trainer.edge_steps = 13;
  config.trainer.cloud_steps = 13;
  config.trainer.edge_success = 0.9;
  config.max_periods = 12;
  const core::Prices start{params.cost_edge * 1.1, params.cost_cloud * 1.1};
  const auto result =
      adaptive_pricing_loop(params, start, 60.0, population, config, 95);
  EXPECT_GT(result.prices.edge, params.cost_edge);
  EXPECT_GT(result.prices.cloud, params.cost_cloud);
  EXPECT_GE(result.prices.edge, start.edge * 0.99);
  EXPECT_GT(result.miners.mean.total(), 0.0);
}

}  // namespace
}  // namespace hecmine::rl
