// Tests for net/campaign: long-horizon mining with churn, difficulty and
// income accounting.
#include "net/campaign.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"

namespace hecmine::net {
namespace {

CampaignConfig base_config() {
  CampaignConfig config;
  config.params.reward = 100.0;
  config.params.fork_rate = 0.2;
  config.params.edge_success = 0.9;
  config.params.edge_capacity = 10.0;
  config.policy = {core::EdgeMode::kConnected, 0.9, 10.0};
  config.prices = {2.0, 1.0};
  config.difficulty.target_interval = 1.0;
  config.difficulty.window = 32;
  config.blocks = 4000;
  return config;
}

TEST(Campaign, AccountingIdentitiesHold) {
  const CampaignConfig config = base_config();
  const std::vector<core::MinerRequest> strategies{
      {2.0, 1.0}, {1.0, 3.0}, {0.5, 2.0}};
  const auto result = run_campaign(config, strategies, 61);
  ASSERT_EQ(result.miners.size(), 3u);
  EXPECT_EQ(result.blocks_mined, config.blocks);
  std::size_t total_wins = 0;
  for (const auto& miner : result.miners) {
    total_wins += miner.wins;
    // Every block, every miner is active (no population law).
    EXPECT_EQ(miner.rounds_active, config.blocks);
    // income = wins * R; payments = rounds * request cost.
    EXPECT_NEAR(miner.income, 100.0 * static_cast<double>(miner.wins), 1e-9);
  }
  EXPECT_EQ(total_wins, result.blocks_mined);
  EXPECT_NEAR(result.miners[0].payments,
              static_cast<double>(config.blocks) *
                  core::request_cost(strategies[0], config.prices),
              1e-6);
}

TEST(Campaign, DifficultyStabilizesBlockIntervals) {
  CampaignConfig config = base_config();
  config.blocks = 20000;
  // Lots of power: without retargeting intervals would be ~1/9.5.
  const std::vector<core::MinerRequest> strategies{{4.0, 2.0}, {2.5, 1.0}};
  const auto result = run_campaign(config, strategies, 62);
  EXPECT_GT(result.retargets, 100u);
  // The time-average interval approaches the 1.0 target (wide tolerance:
  // proportional retargeting is a noisy controller).
  EXPECT_NEAR(result.block_intervals.mean(), 1.0, 0.15);
  EXPECT_LT(result.final_unit_rate, 1.0);
}

TEST(Campaign, PopulationChurnReducesActivity) {
  CampaignConfig config = base_config();
  config.population = core::PopulationModel::around(3.0, 1.0);
  const std::vector<core::MinerRequest> strategies(
      static_cast<std::size_t>(config.population->max_miners()),
      {1.0, 1.0});
  const auto result = run_campaign(config, strategies, 63);
  std::size_t total_active = 0;
  for (const auto& miner : result.miners) {
    EXPECT_LT(miner.rounds_active, config.blocks);
    total_active += miner.rounds_active;
  }
  EXPECT_NEAR(static_cast<double>(total_active) /
                  static_cast<double>(config.blocks),
              3.0, 0.2);
}

TEST(Campaign, RealizedConcentrationTracksRequestShares) {
  const CampaignConfig config = base_config();
  // One dominant miner: realized HHI well above uniform 1/3.
  const std::vector<core::MinerRequest> strategies{
      {6.0, 8.0}, {0.5, 0.5}, {0.5, 0.5}};
  const auto result = run_campaign(config, strategies, 64);
  EXPECT_GT(result.realized_hhi, 0.5);
}

TEST(Campaign, EdgeHeavyStrategyHasLowerIncomeVarianceThanItsScale) {
  // Sanity on the volatility accounting: per-round utility stddev is
  // dominated by the Bernoulli(R) reward lottery.
  const CampaignConfig config = base_config();
  const std::vector<core::MinerRequest> strategies{{2.0, 2.0}, {2.0, 2.0}};
  const auto result = run_campaign(config, strategies, 65);
  for (const auto& miner : result.miners) {
    const double p = static_cast<double>(miner.wins) /
                     static_cast<double>(miner.rounds_active);
    const double bernoulli_sd = 100.0 * std::sqrt(p * (1.0 - p));
    EXPECT_NEAR(miner.round_utility.stddev(), bernoulli_sd,
                0.1 * bernoulli_sd);
  }
}

TEST(Campaign, PoolingPreservesExpectedIncome) {
  // Proportional payouts are share-fair: pooling the first two identical
  // miners leaves everyone's mean income per round unchanged within noise.
  CampaignConfig config = base_config();
  config.blocks = 60000;
  const std::vector<core::MinerRequest> strategies{
      {1.0, 1.0}, {1.0, 1.0}, {2.0, 2.0}};
  const auto solo = run_campaign(config, strategies, 66);
  const auto pooled =
      run_campaign_with_pools(config, strategies, {0, 0, -1}, 66);
  for (std::size_t i = 0; i < strategies.size(); ++i) {
    const double solo_mean =
        solo.miners[i].income / static_cast<double>(solo.miners[i].rounds_active);
    const double pooled_mean =
        pooled.miners[i].income /
        static_cast<double>(pooled.miners[i].rounds_active);
    EXPECT_NEAR(pooled_mean, solo_mean, 0.05 * solo_mean + 0.2)
        << "miner " << i;
  }
}

TEST(Campaign, PoolingShrinksIncomeVariance) {
  CampaignConfig config = base_config();
  config.blocks = 30000;
  const std::vector<core::MinerRequest> strategies{
      {1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}, {2.0, 2.0}};
  const auto solo = run_campaign(config, strategies, 67);
  // Miners 0-2 form one pool; miner 3 stays solo.
  const auto pooled =
      run_campaign_with_pools(config, strategies, {0, 0, 0, -1}, 67);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_LT(pooled.miners[i].round_utility.stddev(),
              0.75 * solo.miners[i].round_utility.stddev())
        << "miner " << i;
  }
  // The solo miner's volatility is unchanged (same lottery).
  EXPECT_NEAR(pooled.miners[3].round_utility.stddev(),
              solo.miners[3].round_utility.stddev(),
              0.05 * solo.miners[3].round_utility.stddev());
}

TEST(Campaign, PoolRewardIsFullyDistributed) {
  CampaignConfig config = base_config();
  config.blocks = 5000;
  const std::vector<core::MinerRequest> strategies{
      {1.0, 0.5}, {0.5, 1.5}, {2.0, 1.0}};
  const auto pooled =
      run_campaign_with_pools(config, strategies, {0, 0, 0}, 68);
  double total_income = 0.0;
  for (const auto& miner : pooled.miners) total_income += miner.income;
  EXPECT_NEAR(total_income,
              100.0 * static_cast<double>(pooled.blocks_mined), 1e-6);
}

TEST(Campaign, PoolValidation) {
  const CampaignConfig config = base_config();
  const std::vector<core::MinerRequest> strategies{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_THROW((void)run_campaign_with_pools(config, strategies, {0}, 1),
               support::PreconditionError);
}

TEST(Campaign, Validates) {
  CampaignConfig config = base_config();
  const std::vector<core::MinerRequest> strategies{{1.0, 1.0}};
  config.blocks = 0;
  EXPECT_THROW((void)run_campaign(config, strategies, 1),
               support::PreconditionError);
  config = base_config();
  EXPECT_THROW((void)run_campaign(config, {}, 1),
               support::PreconditionError);
  config.population = core::PopulationModel::around(5.0, 1.0);
  // Pool smaller than the population support.
  EXPECT_THROW((void)run_campaign(config, strategies, 1),
               support::PreconditionError);
}

}  // namespace
}  // namespace hecmine::net
