// Tests for support/config and core/scenario.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/scenario.hpp"
#include "support/config.hpp"
#include "support/error.hpp"

namespace hecmine {
namespace {

TEST(Config, ParsesKeysCommentsAndBlanks) {
  const auto config = support::Config::parse(
      "# header comment\n"
      "alpha = 1.5\n"
      "\n"
      "name= bench # trailing comment\n"
      "  spaced   =   value here  \n");
  EXPECT_TRUE(config.has("alpha"));
  EXPECT_DOUBLE_EQ(config.get("alpha", 0.0), 1.5);
  EXPECT_EQ(config.get("name", std::string()), "bench");
  EXPECT_EQ(config.get("spaced", std::string()), "value here");
  EXPECT_FALSE(config.has("missing"));
  EXPECT_EQ(config.get("missing", 7), 7);
}

TEST(Config, RejectsMalformedLinesAndValues) {
  EXPECT_THROW((void)support::Config::parse("not a key value line"),
               support::PreconditionError);
  EXPECT_THROW((void)support::Config::parse("= value"),
               support::PreconditionError);
  const auto config = support::Config::parse("n = abc\nflag = maybe");
  EXPECT_THROW((void)config.get("n", 1.0), support::PreconditionError);
  EXPECT_THROW((void)config.get("flag", true), support::PreconditionError);
}

TEST(Config, BooleansAndLists) {
  const auto config = support::Config::parse(
      "on = true\noff = 0\nxs = 1, 2.5,3 \nempty_fallback = 1");
  EXPECT_TRUE(config.get("on", false));
  EXPECT_FALSE(config.get("off", true));
  EXPECT_TRUE(config.get("missing", true));
  const auto xs = config.get_list("xs", {});
  ASSERT_EQ(xs.size(), 3u);
  EXPECT_DOUBLE_EQ(xs[1], 2.5);
  const auto fallback = config.get_list("nope", {9.0});
  ASSERT_EQ(fallback.size(), 1u);
  EXPECT_THROW((void)config.get_list("on", {}), support::PreconditionError);
}

TEST(Config, LoadsFromFile) {
  const std::string path = "test_out/config_load.conf";
  std::filesystem::create_directories("test_out");
  {
    std::ofstream out{path};
    out << "reward = 250\n";
  }
  const auto config = support::Config::load(path);
  EXPECT_DOUBLE_EQ(config.get("reward", 0.0), 250.0);
  EXPECT_THROW((void)support::Config::load("test_out/nonexistent.conf"),
               std::runtime_error);
  std::filesystem::remove_all("test_out");
}

TEST(Scenario, ParsesFullScenario) {
  const auto scenario = core::scenario_from_config(support::Config::parse(
      "reward = 200\n"
      "beta = 0.3\n"
      "h = 0.8\n"
      "capacity = 12\n"
      "mode = standalone\n"
      "budgets = 10, 20, 30\n"
      "price_edge = 3\n"
      "price_cloud = 1.5\n"));
  EXPECT_DOUBLE_EQ(scenario.params.reward, 200.0);
  EXPECT_DOUBLE_EQ(scenario.params.fork_rate, 0.3);
  EXPECT_EQ(scenario.mode, core::EdgeMode::kStandalone);
  ASSERT_EQ(scenario.budgets.size(), 3u);
  EXPECT_FALSE(scenario.homogeneous());
  ASSERT_TRUE(scenario.fixed_prices.has_value());
  EXPECT_DOUBLE_EQ(scenario.fixed_prices->edge, 3.0);
  EXPECT_FALSE(scenario.population.has_value());
}

TEST(Scenario, DelayConvertsThroughForkModel) {
  const auto scenario = core::scenario_from_config(
      support::Config::parse("delay = 2.5\ntau = 12.6\n"));
  const core::ForkModel model(12.6);
  EXPECT_NEAR(scenario.params.fork_rate, model.fork_rate(2.5), 1e-12);
  // Explicit beta wins over delay.
  const auto explicit_beta = core::scenario_from_config(
      support::Config::parse("beta = 0.11\ndelay = 2.5\n"));
  EXPECT_DOUBLE_EQ(explicit_beta.params.fork_rate, 0.11);
}

TEST(Scenario, HomogeneousShortcutAndDefaults) {
  const auto scenario = core::scenario_from_config(
      support::Config::parse("miners = 4\nbudget = 25\n"));
  ASSERT_EQ(scenario.budgets.size(), 4u);
  EXPECT_TRUE(scenario.homogeneous());
  EXPECT_EQ(scenario.mode, core::EdgeMode::kConnected);
  EXPECT_FALSE(scenario.fixed_prices.has_value());
}

TEST(Scenario, PopulationLaws) {
  const auto gaussian = core::scenario_from_config(support::Config::parse(
      "population_mean = 10\npopulation_stddev = 2\n"));
  ASSERT_TRUE(gaussian.population.has_value());
  EXPECT_NEAR(gaussian.population->mean(), 10.0, 0.05);
  const auto poisson = core::scenario_from_config(support::Config::parse(
      "population_mean = 9\npopulation_law = poisson\n"));
  ASSERT_TRUE(poisson.population.has_value());
  EXPECT_NEAR(poisson.population->variance(), 9.0, 0.4);
  EXPECT_THROW((void)core::scenario_from_config(support::Config::parse(
                   "population_mean = 9\npopulation_law = weird\n")),
               support::PreconditionError);
}

TEST(Scenario, RejectsBadValues) {
  EXPECT_THROW(
      (void)core::scenario_from_config(support::Config::parse("mode = p2p")),
      support::PreconditionError);
  EXPECT_THROW((void)core::scenario_from_config(
                   support::Config::parse("budgets = 10, -5")),
               support::PreconditionError);
  EXPECT_THROW((void)core::scenario_from_config(
                   support::Config::parse("miners = 1")),
               support::PreconditionError);
  EXPECT_THROW((void)core::scenario_from_config(
                   support::Config::parse("beta = 1.5")),
               support::PreconditionError);
}

}  // namespace
}  // namespace hecmine
