// Tests for core/params: parameter validation and the ForkModel
// substitution (exponential collision model, DESIGN.md §5).
#include "core/params.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/population.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace hecmine::core {
namespace {

TEST(NetworkParams, DefaultsAreValid) {
  NetworkParams params;
  EXPECT_NO_THROW(params.validate());
}

TEST(NetworkParams, RejectsEachBadField) {
  const NetworkParams valid;
  {
    NetworkParams params = valid;
    params.reward = 0.0;
    EXPECT_THROW(params.validate(), support::PreconditionError);
  }
  {
    NetworkParams params = valid;
    params.fork_rate = 1.0;
    EXPECT_THROW(params.validate(), support::PreconditionError);
  }
  {
    NetworkParams params = valid;
    params.fork_rate = -0.1;
    EXPECT_THROW(params.validate(), support::PreconditionError);
  }
  {
    NetworkParams params = valid;
    params.edge_success = 0.0;
    EXPECT_THROW(params.validate(), support::PreconditionError);
  }
  {
    NetworkParams params = valid;
    params.edge_success = 1.1;
    EXPECT_THROW(params.validate(), support::PreconditionError);
  }
  {
    NetworkParams params = valid;
    params.edge_capacity = 0.0;
    EXPECT_THROW(params.validate(), support::PreconditionError);
  }
  {
    NetworkParams params = valid;
    params.cost_edge = -1.0;
    EXPECT_THROW(params.validate(), support::PreconditionError);
  }
}

TEST(ForkModel, RejectsBadInputs) {
  EXPECT_THROW(ForkModel(0.0), support::PreconditionError);
  const ForkModel model(10.0);
  EXPECT_THROW((void)model.fork_rate(-1.0), support::PreconditionError);
  EXPECT_THROW((void)model.collision_pdf(-1.0), support::PreconditionError);
  EXPECT_THROW((void)model.delay_for_rate(1.0), support::PreconditionError);
}

TEST(ForkModel, RateIsMonotoneAndBounded) {
  const ForkModel model(12.6);
  double previous = -1.0;
  for (double delay = 0.0; delay <= 100.0; delay += 5.0) {
    const double rate = model.fork_rate(delay);
    EXPECT_GT(rate, previous);
    EXPECT_GE(rate, 0.0);
    EXPECT_LT(rate, 1.0);
    previous = rate;
  }
  EXPECT_DOUBLE_EQ(model.fork_rate(0.0), 0.0);
}

TEST(ForkModel, LinearForSmallDelays) {
  // The Bitcoin CDF regime of Fig. 2(b): beta(D) ~ D/tau for D << tau.
  const ForkModel model(12.6);
  for (double delay : {0.1, 0.5, 1.0}) {
    EXPECT_NEAR(model.fork_rate(delay), delay / 12.6,
                0.05 * delay / 12.6);
  }
}

TEST(ForkModel, PdfIntegratesToOne) {
  const ForkModel model(5.0);
  double integral = 0.0;
  const double dt = 0.01;
  for (double t = 0.0; t < 80.0; t += dt)
    integral += model.collision_pdf(t + 0.5 * dt) * dt;
  EXPECT_NEAR(integral, 1.0, 1e-4);
}

TEST(ForkModel, DelayForRateInvertsExactly) {
  const ForkModel model(7.3);
  for (double rate : {0.0, 0.05, 0.3, 0.7, 0.99}) {
    EXPECT_NEAR(model.fork_rate(model.delay_for_rate(rate)), rate, 1e-12);
  }
}

TEST(PoissonPopulation, PmfSumsToOneWithPoissonShape) {
  const auto model = PopulationModel::poisson(6.0, 1, 30);
  double total = 0.0;
  for (int k = 1; k <= 30; ++k) total += model.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Mode of Poisson(6) is at k = 5 and 6 (equal mass).
  EXPECT_NEAR(model.pmf(5), model.pmf(6), 1e-12);
  EXPECT_GT(model.pmf(6), model.pmf(8));
}

TEST(PoissonPopulation, MomentsMatchTheLaw) {
  const auto model = PopulationModel::poisson_around(9.0);
  EXPECT_NEAR(model.mean(), 9.0, 0.05);
  EXPECT_NEAR(model.variance(), 9.0, 0.3);
}

TEST(PoissonPopulation, SamplesFollowThePmf) {
  const auto model = PopulationModel::poisson_around(4.0);
  support::Rng rng{99};
  std::vector<int> counts(40, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i)
    ++counts[static_cast<std::size_t>(model.sample(rng))];
  for (int k = model.min_miners(); k <= model.max_miners(); ++k) {
    EXPECT_NEAR(static_cast<double>(counts[static_cast<std::size_t>(k)]) / draws,
                model.pmf(k), 0.01);
  }
}

TEST(PoissonPopulation, Validates) {
  EXPECT_THROW((void)PopulationModel::poisson(0.0, 1, 10),
               support::PreconditionError);
  EXPECT_THROW((void)PopulationModel::poisson(5.0, 0, 10),
               support::PreconditionError);
  EXPECT_THROW((void)PopulationModel::poisson(1e-9, 300, 400),
               support::PreconditionError);
}

TEST(PoissonPopulation, LargeMeanStaysFinite) {
  // log-space evaluation: no overflow even for big populations.
  const auto model = PopulationModel::poisson_around(400.0);
  EXPECT_NEAR(model.mean(), 400.0, 1.0);
  EXPECT_GT(model.pmf(400), 0.0);
}

}  // namespace
}  // namespace hecmine::core
