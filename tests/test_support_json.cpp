// JSON reader and writer tests: value kinds, accessors, escapes, error
// handling, the JSONL line parser, the streaming Writer (compact and block
// styles, escaping, number formatting), and a round trip through the
// project's own telemetry emitter (the parser's main customer is our own
// output).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "support/error.hpp"
#include "support/json.hpp"
#include "support/telemetry.hpp"

namespace {

using namespace hecmine;
using support::json::Value;

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(support::json::parse("null").is_null());
  EXPECT_TRUE(support::json::parse("true").as_bool());
  EXPECT_FALSE(support::json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(support::json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(support::json::parse("-1.5e2").as_number(), -150.0);
  EXPECT_EQ(support::json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, StringEscapes) {
  const Value value =
      support::json::parse(R"("a\"b\\c\nd\tAé")");
  EXPECT_EQ(value.as_string(), "a\"b\\c\nd\tA\xc3\xa9");
}

TEST(JsonParse, NestedStructure) {
  const Value doc = support::json::parse(
      R"({"runs": [{"label": "x", "wall_ms": 1.5}], "ok": true, "n": null})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_TRUE(doc.at("n").is_null());
  const auto& runs = doc.at("runs").as_array();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].at("label").as_string(), "x");
  EXPECT_DOUBLE_EQ(runs[0].at("wall_ms").as_number(), 1.5);
}

TEST(JsonValue, FindAndNumberOr) {
  const Value doc = support::json::parse(R"({"a": 2.5})");
  EXPECT_NE(doc.find("a"), nullptr);
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_TRUE(doc.contains("a"));
  EXPECT_DOUBLE_EQ(doc.number_or("a", -1.0), 2.5);
  EXPECT_DOUBLE_EQ(doc.number_or("missing", -1.0), -1.0);
  EXPECT_THROW((void)doc.at("missing"), support::PreconditionError);
}

TEST(JsonValue, KindMismatchThrows) {
  const Value doc = support::json::parse(R"({"a": "text"})");
  EXPECT_THROW((void)doc.at("a").as_number(), support::PreconditionError);
  EXPECT_THROW((void)doc.as_array(), support::PreconditionError);
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW((void)support::json::parse(""), support::PreconditionError);
  EXPECT_THROW((void)support::json::parse("{"), support::PreconditionError);
  EXPECT_THROW((void)support::json::parse("[1,]"),
               support::PreconditionError);
  EXPECT_THROW((void)support::json::parse("{\"a\" 1}"),
               support::PreconditionError);
  EXPECT_THROW((void)support::json::parse("1 trailing"),
               support::PreconditionError);
  EXPECT_THROW((void)support::json::parse("\"unterminated"),
               support::PreconditionError);
}

TEST(JsonParse, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  deep += "1";
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_THROW((void)support::json::parse(deep), support::PreconditionError);
}

TEST(JsonParseLines, SkipsBlankLinesAndParsesEach) {
  const auto values = support::json::parse_lines(
      "{\"a\": 1}\n\n{\"a\": 2}\n   \n{\"a\": 3}\n");
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[2].at("a").as_number(), 3.0);
}

TEST(JsonParseFile, ReadsFromDiskAndReportsMissingFiles) {
  const std::string path = testing::TempDir() + "/hecmine_json_read.json";
  {
    std::ofstream out(path);
    out << R"({"k": [1, 2, 3]})";
  }
  const Value doc = support::json::parse_file(path);
  EXPECT_EQ(doc.at("k").as_array().size(), 3u);
  std::remove(path.c_str());
  EXPECT_THROW((void)support::json::parse_file(path),
               support::PreconditionError);
}

TEST(JsonWriter, CompactObjectAndArray) {
  std::ostringstream os;
  support::json::Writer writer(os);
  writer.begin_object();
  writer.member("label", "run/3");
  writer.member("wall_ms", 1.5);
  writer.member("ok", true);
  writer.key("counts");
  writer.begin_array();
  writer.value(0);
  writer.value(1);
  writer.value(2);
  writer.end_array();
  writer.key("none");
  writer.null();
  writer.end_object();
  writer.finish();
  EXPECT_EQ(os.str(),
            "{\"label\": \"run/3\", \"wall_ms\": 1.5, \"ok\": true, "
            "\"counts\": [0, 1, 2], \"none\": null}\n");
}

TEST(JsonWriter, BlockStyleIndentsTwoSpacesPerDepth) {
  std::ostringstream os;
  support::json::Writer writer(os);
  writer.begin_object(support::json::Writer::kBlock);
  writer.member("schema", "hecmine.bench.v1");
  writer.key("runs");
  writer.begin_array(support::json::Writer::kBlock);
  writer.begin_object();
  writer.member("label", "a");
  writer.end_object();
  writer.end_array();
  writer.end_object();
  writer.finish();
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"schema\": \"hecmine.bench.v1\",\n"
            "  \"runs\": [\n"
            "    {\"label\": \"a\"}\n"
            "  ]\n"
            "}\n");
}

TEST(JsonWriter, EmptyContainersStayOnOneLine) {
  std::ostringstream os;
  support::json::Writer writer(os);
  writer.begin_object(support::json::Writer::kBlock);
  writer.key("counters");
  writer.begin_object();
  writer.end_object();
  writer.key("spans");
  writer.begin_array(support::json::Writer::kBlock);
  writer.end_array();
  writer.end_object();
  writer.finish();
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"counters\": {},\n"
            "  \"spans\": []\n"
            "}\n");
}

TEST(JsonWriter, EscapesKeysAndValues) {
  std::ostringstream os;
  support::json::Writer writer(os);
  writer.begin_object();
  writer.member("a\"b", "line1\nline2\t\\end");
  writer.end_object();
  writer.finish();
  const Value doc = support::json::parse(os.str());
  EXPECT_EQ(doc.at("a\"b").as_string(), "line1\nline2\t\\end");
}

TEST(JsonWriter, NumberFormattingRoundTrips) {
  std::ostringstream os;
  support::json::Writer writer(os);
  writer.begin_object();
  writer.member("third", 1.0 / 3.0);
  writer.member("big", std::uint64_t{1} << 53);
  writer.member("neg", std::int64_t{-42});
  writer.member("nan", std::numeric_limits<double>::quiet_NaN());
  writer.member("inf", std::numeric_limits<double>::infinity());
  writer.end_object();
  writer.finish();
  const Value doc = support::json::parse(os.str());
  EXPECT_DOUBLE_EQ(doc.at("third").as_number(), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(doc.at("big").as_number(),
                   std::pow(2.0, 53.0));
  EXPECT_DOUBLE_EQ(doc.at("neg").as_number(), -42.0);
  // Non-finite doubles are not representable in JSON: they degrade to null
  // rather than corrupting the document.
  EXPECT_TRUE(doc.at("nan").is_null());
  EXPECT_TRUE(doc.at("inf").is_null());
}

TEST(JsonParse, RoundTripsTelemetryEmitter) {
  support::Telemetry telemetry;
  telemetry.metrics.counter("rt.count").add(7);
  telemetry.metrics.gauge("rt.gauge").set(0.125);
  telemetry.metrics.histogram("rt.hist", {1.0, 2.0}).observe(1.5);
  const Value doc = support::json::parse(support::to_json(telemetry));
  EXPECT_EQ(doc.at("schema").as_string(), "hecmine.telemetry.v1");
  EXPECT_DOUBLE_EQ(doc.at("counters").at("rt.count").as_number(), 7.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("rt.gauge").as_number(), 0.125);
  EXPECT_TRUE(doc.at("histograms").at("rt.hist").contains("p50"));
}

}  // namespace
