// Tests for the net substrate: admission policies, payments, and the
// Monte-Carlo validation of the degraded winning probabilities
// (Eqs. 7, 8, 9 / 23) through the full offloading pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "core/winning.hpp"
#include "net/network.hpp"
#include "net/offload.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace hecmine::net {
namespace {

core::NetworkParams default_params() {
  core::NetworkParams params;
  params.reward = 100.0;
  params.fork_rate = 0.25;
  params.edge_success = 0.8;
  params.edge_capacity = 6.0;
  return params;
}

const std::vector<core::MinerRequest> kProfile{
    {2.0, 1.0}, {1.5, 2.5}, {1.0, 4.0}};

TEST(Admission, ConnectedTransfersAtExpectedRate) {
  EdgePolicy policy;
  policy.mode = core::EdgeMode::kConnected;
  policy.success_prob = 0.8;
  support::Rng rng{71};
  std::size_t transfers = 0;
  const std::size_t trials = 100000;
  for (std::size_t t = 0; t < trials; ++t) {
    const auto records = admit_requests(kProfile, policy, {2.0, 1.0}, rng);
    for (const auto& record : records)
      if (record.edge_status == ServiceStatus::kTransferred) ++transfers;
  }
  const double rate =
      static_cast<double>(transfers) / static_cast<double>(trials * 3);
  EXPECT_NEAR(rate, 0.2, 0.005);
}

TEST(Admission, TransferredRequestMovesAllUnitsToCloud) {
  EdgePolicy policy;
  policy.mode = core::EdgeMode::kConnected;
  policy.success_prob = 0.8;
  const auto records =
      admit_requests_focal(kProfile, policy, {2.0, 1.0}, 0, true);
  EXPECT_EQ(records[0].edge_status, ServiceStatus::kTransferred);
  EXPECT_DOUBLE_EQ(records[0].granted.edge_units, 0.0);
  EXPECT_DOUBLE_EQ(records[0].granted.cloud_units, 3.0);  // e + c
  // Others untouched.
  EXPECT_EQ(records[1].edge_status, ServiceStatus::kServed);
  EXPECT_DOUBLE_EQ(records[1].granted.edge_units, 1.5);
}

TEST(Admission, StandaloneServesEveryoneUnderCapacity) {
  EdgePolicy policy;
  policy.mode = core::EdgeMode::kStandalone;
  policy.capacity = 10.0;  // total edge demand is 4.5
  support::Rng rng{72};
  const auto records = admit_requests(kProfile, policy, {2.0, 1.0}, rng);
  for (const auto& record : records)
    EXPECT_EQ(record.edge_status, ServiceStatus::kServed);
}

TEST(Admission, StandaloneRejectsWholeRequestsWhenOverloaded) {
  EdgePolicy policy;
  policy.mode = core::EdgeMode::kStandalone;
  policy.capacity = 3.0;  // cannot serve all of e = (2, 1.5, 1)
  support::Rng rng{73};
  for (int trial = 0; trial < 200; ++trial) {
    const auto records = admit_requests(kProfile, policy, {2.0, 1.0}, rng);
    double served_edge = 0.0;
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (records[i].edge_status == ServiceStatus::kServed) {
        served_edge += records[i].granted.edge_units;
        EXPECT_DOUBLE_EQ(records[i].granted.edge_units,
                         kProfile[i].edge);
      } else {
        EXPECT_EQ(records[i].edge_status, ServiceStatus::kRejected);
        EXPECT_DOUBLE_EQ(records[i].granted.edge_units, 0.0);
        EXPECT_DOUBLE_EQ(records[i].granted.cloud_units, kProfile[i].cloud);
      }
    }
    EXPECT_LE(served_edge, 3.0 + 1e-12);
  }
}

TEST(Admission, PaymentsChargeTheRequestedUnits) {
  // Paper utility model: miners pay P_e e + P_c c regardless of outcome.
  EdgePolicy policy;
  policy.mode = core::EdgeMode::kConnected;
  policy.success_prob = 0.5;
  const auto records =
      admit_requests_focal(kProfile, policy, {2.0, 1.0}, 0, true);
  EXPECT_DOUBLE_EQ(records[0].payment_edge, 2.0 * 2.0);
  EXPECT_DOUBLE_EQ(records[0].payment_cloud, 1.0 * 1.0);
}

TEST(Admission, ValidatesInputs) {
  EdgePolicy policy;
  policy.mode = core::EdgeMode::kConnected;
  policy.success_prob = 0.0;
  support::Rng rng{74};
  EXPECT_THROW((void)admit_requests(kProfile, policy, {2.0, 1.0}, rng),
               support::PreconditionError);
  policy.success_prob = 0.5;
  EXPECT_THROW(
      (void)admit_requests_focal(kProfile, policy, {2.0, 1.0}, 9, true),
      support::PreconditionError);
}

TEST(FocalValidation, ConnectedMatchesEquation9) {
  // The end-to-end pipeline (admission + race) must reproduce the paper's
  // expected winning probability W_i = h W^h + (1-h) W^{1-h}.
  const core::NetworkParams params = default_params();
  EdgePolicy policy;
  policy.mode = core::EdgeMode::kConnected;
  policy.success_prob = params.edge_success;
  const core::Totals totals = core::aggregate(kProfile);
  for (std::size_t focal = 0; focal < kProfile.size(); ++focal) {
    const double estimate = estimate_focal_win_probability(
        params, policy, kProfile, focal, 400000, 75 + focal);
    const double expected = core::win_prob_connected(
        kProfile[focal], totals, params.fork_rate, params.edge_success);
    EXPECT_NEAR(estimate, expected, 0.005) << "focal " << focal;
  }
}

TEST(FocalValidation, StandaloneRejectionMatchesEquation8) {
  const core::NetworkParams params = default_params();
  EdgePolicy policy;
  policy.mode = core::EdgeMode::kStandalone;
  policy.capacity = params.edge_capacity;
  const core::Totals totals = core::aggregate(kProfile);
  for (std::size_t focal = 0; focal < kProfile.size(); ++focal) {
    const double estimate = estimate_focal_win_probability(
        params, policy, kProfile, focal, 400000, 80 + focal);
    const double expected = core::win_prob_standalone_rejection(
        kProfile[focal], totals, params.fork_rate);
    EXPECT_NEAR(estimate, expected, 0.005) << "focal " << focal;
  }
}

TEST(MiningNetwork, AccumulatesConsistentStats) {
  const core::NetworkParams params = default_params();
  EdgePolicy policy;
  policy.mode = core::EdgeMode::kConnected;
  policy.success_prob = params.edge_success;
  MiningNetwork network(params, policy, {2.0, 1.0}, 81);
  const std::size_t rounds = 5000;
  network.run_rounds(kProfile, rounds);
  const NetworkStats& stats = network.stats();
  EXPECT_EQ(stats.rounds, rounds);
  // Every round everyone pays for the full request.
  double edge_spend = 0.0, cloud_spend = 0.0;
  for (const auto& request : kProfile) {
    edge_spend += 2.0 * request.edge;
    cloud_spend += 1.0 * request.cloud;
  }
  EXPECT_NEAR(stats.revenue_edge, edge_spend * rounds, 1e-6);
  EXPECT_NEAR(stats.revenue_cloud, cloud_spend * rounds, 1e-6);
  // Wins sum to the number of rounds (someone always mines here).
  std::size_t total_wins = 0;
  for (std::size_t w : stats.wins) total_wins += w;
  EXPECT_EQ(total_wins, rounds);
  EXPECT_EQ(network.ledger().height(), rounds);
}

TEST(MiningNetwork, RealizedUtilityExceedsConditionalModelByTheLeak) {
  // The paper's connected-mode probabilities are *conditional* on one
  // miner's transfer with everyone else served, so they sum to
  // 1 - (1-h) beta < 1: the mass a transferred-and-forked block loses is
  // not reassigned. The real network always awards the block, so realized
  // per-miner utilities sit above the conditional model by exactly that
  // leaked reward in aggregate.
  const core::NetworkParams params = default_params();
  EdgePolicy policy;
  policy.mode = core::EdgeMode::kConnected;
  policy.success_prob = params.edge_success;
  MiningNetwork network(params, policy, {2.0, 1.0}, 82);
  const std::size_t rounds = 400000;
  network.run_rounds(kProfile, rounds);
  const core::Totals totals = core::aggregate(kProfile);
  double total_gap = 0.0;
  for (std::size_t i = 0; i < kProfile.size(); ++i) {
    const double conditional =
        params.reward *
            core::win_prob_connected(kProfile[i], totals, params.fork_rate,
                                     params.edge_success) -
        core::request_cost(kProfile[i], {2.0, 1.0});
    const double gap = network.stats().utility[i].mean() - conditional;
    EXPECT_GT(gap, -0.3) << "miner " << i;  // no miner does worse
    total_gap += gap;
  }
  const double leak =
      params.reward * (1.0 - params.edge_success) * params.fork_rate;
  EXPECT_NEAR(total_gap, leak, 0.15 * leak + 0.3);
}

TEST(MiningNetwork, StandaloneCountsRejections) {
  core::NetworkParams params = default_params();
  EdgePolicy policy;
  policy.mode = core::EdgeMode::kStandalone;
  policy.capacity = 3.0;  // below total edge demand 4.5 -> rejections
  MiningNetwork network(params, policy, {2.0, 1.0}, 83);
  network.run_rounds(kProfile, 2000);
  EXPECT_GT(network.stats().rejections, 0u);
  EXPECT_EQ(network.stats().transfers, 0u);
}

TEST(MiningNetwork, SetPricesTakesEffect) {
  const core::NetworkParams params = default_params();
  EdgePolicy policy;
  policy.mode = core::EdgeMode::kConnected;
  policy.success_prob = 0.9;
  MiningNetwork network(params, policy, {2.0, 1.0}, 84);
  network.set_prices({4.0, 2.0});
  const auto report = network.run_round(kProfile);
  EXPECT_DOUBLE_EQ(report.service[0].payment_edge, 4.0 * kProfile[0].edge);
  EXPECT_THROW(network.set_prices({0.0, 1.0}), support::PreconditionError);
}

}  // namespace
}  // namespace hecmine::net
