// Tests for the message-level event-driven network: the endogenous fork
// rate matches the exponential ForkModel, win rates match the paper's
// formulas when beta is matched, and the protocol milestones trace
// correctly.
#include "net/event_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/params.hpp"
#include "core/winning.hpp"
#include "support/error.hpp"

namespace hecmine::net {
namespace {

EventSimConfig base_config() {
  EventSimConfig config;
  config.policy = {core::EdgeMode::kConnected, 1.0, 100.0};
  config.latency.miner_edge = 0.0;
  config.latency.edge_cloud = 0.3;
  config.latency.miner_cloud = 0.3;
  config.unit_hash_rate = 1.0;
  return config;
}

TEST(EventSim, EmptyProfileYieldsNoRound) {
  EventDrivenNetwork network(base_config(), 21);
  EXPECT_FALSE(network.run_round({{0.0, 0.0}}).has_value());
  EXPECT_EQ(network.stats().rounds, 0u);
}

TEST(EventSim, ValidatesConfigAndRequests) {
  EventSimConfig config = base_config();
  config.unit_hash_rate = 0.0;
  EXPECT_THROW(EventDrivenNetwork(config, 1), support::PreconditionError);
  EventDrivenNetwork network(base_config(), 2);
  EXPECT_THROW((void)network.run_round({{-1.0, 0.0}}),
               support::PreconditionError);
}

TEST(EventSim, ZeroDelayWinRatesAreProportionalToPower) {
  EventSimConfig config = base_config();
  config.latency.miner_cloud = 0.0;
  config.latency.edge_cloud = 0.0;
  EventDrivenNetwork network(config, 23);
  const std::vector<core::MinerRequest> profile{{3.0, 0.0}, {0.0, 1.0}};
  network.run_rounds(profile, 100000);
  EXPECT_NEAR(static_cast<double>(network.stats().wins[0]) / 100000.0, 0.75,
              0.01);
  EXPECT_EQ(network.stats().forks, 0u);
}

TEST(EventSim, EndogenousForkRateMatchesExponentialModel) {
  // A first-found cloud block is overtaken iff some edge unit solves
  // within the propagation window D: P = 1 - exp(-E * rate * D) — exactly
  // core::ForkModel with tau = 1/(E * rate).
  EventSimConfig config = base_config();
  config.latency.miner_cloud = 0.4;
  EventDrivenNetwork network(config, 24);
  const std::vector<core::MinerRequest> profile{{2.0, 0.0}, {0.0, 3.0}};
  network.run_rounds(profile, 200000);
  const core::ForkModel model(1.0 / 2.0);  // tau = 1/(E * rate), E = 2
  EXPECT_NEAR(network.stats().measured_fork_rate(),
              model.fork_rate(0.4), 0.01);
}

TEST(EventSim, WinRatesMatchPaperFormulaAtMatchedBeta) {
  // Measure the endogenous beta, then compare win rates against Eq. (6)
  // evaluated at that beta. The paper models only the back-end broadcast
  // delay, so placement legs are zeroed here and only cloud_propagation
  // carries the fork window.
  EventSimConfig config = base_config();
  config.latency.miner_cloud = 0.0;
  config.latency.edge_cloud = 0.0;
  config.cloud_propagation = 0.25;
  EventDrivenNetwork network(config, 25);
  const std::vector<core::MinerRequest> profile{
      {2.0, 1.0}, {1.0, 3.0}, {0.5, 2.0}};
  const std::size_t rounds = 300000;
  network.run_rounds(profile, rounds);
  const core::Totals totals = core::aggregate(profile);
  const double beta = network.stats().measured_fork_rate();
  // Predicted beta from the exponential model: E = 3.5, D = 0.25.
  EXPECT_NEAR(beta, 1.0 - std::exp(-3.5 * 0.25), 0.01);
  for (std::size_t i = 0; i < profile.size(); ++i) {
    const double model = core::win_prob_full(profile[i], totals, beta);
    EXPECT_NEAR(static_cast<double>(network.stats().wins[i]) /
                    static_cast<double>(rounds),
                model, 0.012)
        << "miner " << i;
  }
}

TEST(EventSim, CloudPlacementLatencyGivesEdgeAHeadStart) {
  // Documented refinement over the paper's Eq. (6): cloud compute starts
  // one upload leg later than edge compute, so the edge-heavy miner's
  // realized win rate exceeds the formula evaluated at the matched beta.
  EventSimConfig config = base_config();
  config.latency.miner_cloud = 0.25;  // placement AND propagation
  EventDrivenNetwork network(config, 31);
  const std::vector<core::MinerRequest> profile{{2.0, 1.0}, {1.0, 3.0}};
  const std::size_t rounds = 150000;
  network.run_rounds(profile, rounds);
  const core::Totals totals = core::aggregate(profile);
  const double beta = network.stats().measured_fork_rate();
  const double formula = core::win_prob_full(profile[0], totals, beta);
  const double realized =
      static_cast<double>(network.stats().wins[0]) /
      static_cast<double>(rounds);
  EXPECT_GT(realized, formula + 0.02);
}

TEST(EventSim, ConnectedTransfersDegradeToCloudTiming) {
  // With h < 1, transferred edge parts compute as cloud blocks; at h -> 0
  // every block is cloud-sourced and no forks can occur (symmetric
  // propagation).
  EventSimConfig config = base_config();
  config.policy.success_prob = 1e-9;
  EventDrivenNetwork network(config, 26);
  const std::vector<core::MinerRequest> profile{{2.0, 0.5}, {1.0, 1.5}};
  network.run_rounds(profile, 20000);
  EXPECT_EQ(network.stats().forks, 0u);
}

TEST(EventSim, StandaloneRejectionDelaysPlacement) {
  // Capacity for one of two identical requests: the rejected miner's edge
  // part mines from the cloud after the resend path, strictly later — its
  // win rate drops below 1/2.
  EventSimConfig config = base_config();
  config.policy = {core::EdgeMode::kStandalone, 1.0, 2.0};
  config.latency.admission_epoch = 0.2;
  config.latency.miner_cloud = 0.4;
  EventDrivenNetwork network(config, 27);
  const std::vector<core::MinerRequest> profile{{2.0, 0.0}, {2.0, 0.0}};
  network.run_rounds(profile, 50000);
  // Random arrival order symmetrizes which miner is rejected; both win
  // rates stay near 1/2 but forks now exist (resent blocks are cloudlike).
  EXPECT_NEAR(static_cast<double>(network.stats().wins[0]) / 50000.0, 0.5,
              0.02);
  EXPECT_GT(network.stats().cloud_first, 0u);
}

TEST(EventSim, TraceRecordsProtocolMilestones) {
  EventSimConfig config = base_config();
  config.record_trace = true;
  config.policy = {core::EdgeMode::kStandalone, 1.0, 1.0};
  config.latency.admission_epoch = 0.1;
  EventDrivenNetwork network(config, 28);
  // One miner fits, one gets rejected and resends.
  const std::vector<core::MinerRequest> profile{{1.0, 0.0}, {1.0, 0.0}};
  const auto outcome = network.run_round(profile);
  ASSERT_TRUE(outcome.has_value());
  const auto& trace = network.last_trace();
  ASSERT_FALSE(trace.empty());
  bool saw_reject = false, saw_resend = false, saw_consensus = false;
  double previous_consensus_time = -1.0;
  for (const auto& event : trace) {
    if (event.kind == EventKind::kRejected) saw_reject = true;
    if (event.kind == EventKind::kResent) saw_resend = true;
    if (event.kind == EventKind::kConsensus) {
      saw_consensus = true;
      previous_consensus_time = event.time;
    }
  }
  EXPECT_TRUE(saw_reject);
  EXPECT_TRUE(saw_resend);
  EXPECT_TRUE(saw_consensus);
  EXPECT_DOUBLE_EQ(previous_consensus_time, outcome->consensus_time);
}

TEST(EventSim, ConsensusTimeShrinksWithMorePower) {
  EventSimConfig config = base_config();
  EventDrivenNetwork small(config, 29);
  EventDrivenNetwork large(config, 30);
  small.run_rounds({{1.0, 0.0}}, 20000);
  large.run_rounds({{10.0, 0.0}}, 20000);
  EXPECT_GT(small.stats().consensus_times.mean(),
            5.0 * large.stats().consensus_times.mean());
}

}  // namespace
}  // namespace hecmine::net
