// Tests for the SoA kernel layer (core/soa.hpp + core/kernels.hpp):
// AoS <-> SoA round-trip exactness, batch-of-one vs scalar bitwise parity,
// and batched-vs-legacy sweep parity on heterogeneous NEP/GNEP fixtures.
#include "core/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "core/equilibrium.hpp"
#include "core/miner.hpp"
#include "core/soa.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace hecmine::core {
namespace {

NetworkParams default_params() {
  NetworkParams params;
  params.reward = 100.0;
  params.fork_rate = 0.2;
  params.edge_success = 0.9;
  params.edge_capacity = 8.0;
  params.cost_edge = 1.0;
  params.cost_cloud = 0.4;
  return params;
}

MinerEnv scalar_env(const NetworkParams& params, const Prices& prices,
                    double edge_success, double surcharge, double budget,
                    const Totals& others) {
  MinerEnv env;
  env.reward = params.reward;
  env.fork_rate = params.fork_rate;
  env.edge_success = edge_success;
  env.prices = prices;
  env.edge_surcharge = surcharge;
  env.budget = budget;
  env.others = others;
  return env;
}

TEST(MinerBatchSoA, RoundTripIsBitwiseExact) {
  support::Rng rng{7};
  std::vector<double> budgets(17);
  std::vector<MinerRequest> requests(17);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    budgets[i] = rng.uniform(0.0, 100.0);
    // Irrational-ish coordinates so any recomputation would show.
    requests[i] = {rng.uniform(0.0, 10.0) * std::sqrt(2.0),
                   rng.uniform(0.0, 10.0) * std::sqrt(3.0)};
  }
  const MinerBatch batch = make_miner_batch(budgets, requests);
  const std::vector<MinerRequest> back = extract_requests(batch);
  ASSERT_EQ(back.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(back[i].edge, requests[i].edge);    // bitwise, not approx
    EXPECT_EQ(back[i].cloud, requests[i].cloud);
    EXPECT_EQ(batch.budget[i], budgets[i]);
  }
}

TEST(MinerBatchSoA, TotalsMatchAggregateExactly) {
  support::Rng rng{11};
  std::vector<double> budgets(9, 10.0);
  std::vector<MinerRequest> requests(9);
  for (auto& request : requests)
    request = {rng.uniform(0.0, 5.0), rng.uniform(0.0, 5.0)};
  const MinerBatch batch = make_miner_batch(budgets, requests);
  const Totals totals = aggregate(requests);
  // Same index-order summation: bitwise equality, not just closeness.
  EXPECT_EQ(batch.total_edge, totals.edge);
  EXPECT_EQ(batch.total_cloud, totals.cloud);
}

TEST(MinerBatchSoA, LoadRequestsRefreshesTotals) {
  MinerBatch batch = make_miner_batch({10.0, 20.0});
  EXPECT_EQ(batch.total_edge, 0.0);
  load_requests(batch, {{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_EQ(batch.total_edge, 1.0 + 3.0);
  EXPECT_EQ(batch.total_cloud, 2.0 + 4.0);
  EXPECT_THROW(load_requests(batch, {{1.0, 2.0}}),
               support::PreconditionError);
}

TEST(ScalarKernels, BitwiseMatchMinerEntryPoints) {
  // The entry points are wrappers over the kernels, so this guards the
  // wrapper contract: same inputs, identical bits, including surcharge and
  // degenerate-opponent cases.
  const NetworkParams params = default_params();
  support::Rng rng{23};
  for (int trial = 0; trial < 200; ++trial) {
    const Prices prices{rng.uniform(0.5, 4.0), rng.uniform(0.2, 2.0)};
    const double h = rng.uniform(0.1, 1.0);
    const double mu = trial % 3 == 0 ? rng.uniform(0.0, 1.0) : 0.0;
    const double budget = trial % 7 == 0 ? 0.0 : rng.uniform(1.0, 80.0);
    Totals others{rng.uniform(0.0, 30.0), rng.uniform(0.0, 50.0)};
    if (trial % 5 == 0) others.edge = 0.0;   // discontinuous sup-at-zero case
    if (trial % 11 == 0) others = {0.0, 0.0};  // epsilon-probe case
    const MinerEnv env = scalar_env(params, prices, h, mu, budget, others);
    const KernelEnv kenv = make_kernel_env(env);

    const MinerRequest br = miner_best_response(env);
    const MinerRequest kbr =
        best_response_kernel(kenv, budget, others.edge, others.grand());
    EXPECT_EQ(br.edge, kbr.edge);
    EXPECT_EQ(br.cloud, kbr.cloud);

    const MinerRequest own{rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)};
    EXPECT_EQ(miner_utility(env, own),
              utility_kernel(kenv, own.edge, own.cloud, others.edge,
                             others.grand()));
    EXPECT_EQ(miner_penalized_utility(env, own),
              penalized_utility_kernel(kenv, own.edge, own.cloud, others.edge,
                                       others.grand()));
    if (others.grand() + own.total() > 0.0) {
      const auto [du_de, du_dc] = miner_utility_gradient(env, own);
      double ke = 0.0;
      double kc = 0.0;
      gradient_kernel(kenv, own.edge, own.cloud, others.edge, others.grand(),
                      ke, kc);
      EXPECT_EQ(du_de, ke);
      EXPECT_EQ(du_dc, kc);
    }
  }
}

TEST(BatchKernels, MatchScalarKernelsPerMiner) {
  // batch_* loops must agree bitwise with the scalar kernels evaluated at
  // the same running-total-derived opponent aggregates.
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  const KernelEnv env = make_kernel_env(params, prices, 0.9, 0.0);
  support::Rng rng{31};
  std::vector<double> budgets(13);
  std::vector<MinerRequest> requests(13);
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    budgets[i] = rng.uniform(5.0, 60.0);
    requests[i] = {rng.uniform(0.0, 4.0), rng.uniform(0.0, 8.0)};
  }
  MinerBatch batch = make_miner_batch(budgets, requests);
  batch_utility(env, batch);
  batch_best_response(env, batch);
  std::vector<double> du_de(batch.size());
  std::vector<double> du_dc(batch.size());
  batch_gradient(env, batch, du_de.data(), du_dc.data());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const double oe = std::max(0.0, batch.total_edge - batch.edge[i]);
    const double og = oe + std::max(0.0, batch.total_cloud - batch.cloud[i]);
    EXPECT_EQ(batch.utility[i],
              utility_kernel(env, batch.edge[i], batch.cloud[i], oe, og));
    const MinerRequest br = best_response_kernel(env, budgets[i], oe, og);
    EXPECT_EQ(batch.response_edge[i], br.edge);
    EXPECT_EQ(batch.response_cloud[i], br.cloud);
    double ge = 0.0;
    double gc = 0.0;
    gradient_kernel(env, batch.edge[i], batch.cloud[i], oe, og, ge, gc);
    EXPECT_EQ(du_de[i], ge);
    EXPECT_EQ(du_dc[i], gc);
  }
}

TEST(BatchSweeps, NepParityWithLegacySweepHeterogeneous) {
  // Theorem 2 uniqueness: the batched Gauss-Seidel driver and the legacy
  // std::function sweep must land on the same equilibrium.
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  const std::vector<double> budgets{5.0, 12.5, 20.0, 35.0, 60.0, 90.0};
  MinerSolveOptions batched;
  batched.use_kernels = true;
  MinerSolveOptions legacy;
  legacy.use_kernels = false;
  const auto eq_batched = solve_connected_nep(params, prices, budgets, batched);
  const auto eq_legacy = solve_connected_nep(params, prices, budgets, legacy);
  ASSERT_TRUE(eq_batched.converged);
  ASSERT_TRUE(eq_legacy.converged);
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    EXPECT_NEAR(eq_batched.requests[i].edge, eq_legacy.requests[i].edge, 1e-6);
    EXPECT_NEAR(eq_batched.requests[i].cloud, eq_legacy.requests[i].cloud,
                1e-6);
    EXPECT_NEAR(eq_batched.utilities[i], eq_legacy.utilities[i], 1e-4);
  }
  EXPECT_NEAR(miner_exploitability(params, prices, budgets,
                                   eq_batched.requests, true),
              0.0, 1e-5);
}

TEST(BatchSweeps, GnepParityWithLegacyDecompositionHeterogeneous) {
  // Tight capacity so the surcharge bisection actually runs in both paths.
  NetworkParams params = default_params();
  params.edge_capacity = 4.0;
  const Prices prices{1.6, 1.0};
  const std::vector<double> budgets{8.0, 15.0, 30.0, 55.0};
  MinerSolveOptions batched;
  batched.use_kernels = true;
  MinerSolveOptions legacy;
  legacy.use_kernels = false;
  const auto eq_batched =
      solve_standalone_gnep(params, prices, budgets, batched);
  const auto eq_legacy = solve_standalone_gnep(params, prices, budgets, legacy);
  ASSERT_TRUE(eq_batched.converged);
  ASSERT_TRUE(eq_legacy.converged);
  EXPECT_EQ(eq_batched.cap_active, eq_legacy.cap_active);
  EXPECT_NEAR(eq_batched.surcharge, eq_legacy.surcharge,
              1e-4 * (1.0 + eq_legacy.surcharge));
  EXPECT_NEAR(eq_batched.totals.edge, eq_legacy.totals.edge, 1e-5);
  EXPECT_LE(eq_batched.totals.edge, params.edge_capacity * (1.0 + 1e-6));
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    EXPECT_NEAR(eq_batched.requests[i].edge, eq_legacy.requests[i].edge, 1e-4);
    EXPECT_NEAR(eq_batched.requests[i].cloud, eq_legacy.requests[i].cloud,
                1e-4);
  }
}

TEST(BatchSweeps, ConvergenceStrideDoesNotMoveTheEquilibrium) {
  const NetworkParams params = default_params();
  const Prices prices{2.2, 0.9};
  const std::vector<double> budgets{10.0, 25.0, 40.0, 70.0};
  MinerSolveOptions stride1;
  stride1.convergence_stride = 1;
  MinerSolveOptions stride8;
  stride8.convergence_stride = 8;
  const auto eq1 = solve_connected_nep(params, prices, budgets, stride1);
  const auto eq8 = solve_connected_nep(params, prices, budgets, stride8);
  ASSERT_TRUE(eq1.converged);
  ASSERT_TRUE(eq8.converged);
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    EXPECT_NEAR(eq1.requests[i].edge, eq8.requests[i].edge, 1e-6);
    EXPECT_NEAR(eq1.requests[i].cloud, eq8.requests[i].cloud, 1e-6);
  }
}

TEST(BatchSweeps, InvalidOptionsThrow) {
  const NetworkParams params = default_params();
  const KernelEnv env = make_kernel_env(params, {2.0, 1.0}, 0.9, 0.0);
  MinerBatch batch = make_miner_batch({10.0, 20.0});
  MinerSolveOptions options;
  options.convergence_stride = 0;
  EXPECT_THROW(solve_nep_batch(env, batch, options, {"t", 2.0, 1.0}),
               support::PreconditionError);
  options = {};
  options.damping = 0.0;
  EXPECT_THROW(solve_nep_batch(env, batch, options, {"t", 2.0, 1.0}),
               support::PreconditionError);
}

TEST(BatchSweeps, ConcurrentBatchSolvesAgree) {
  // The drivers share no mutable state across batches; concurrent solves
  // (as the leader-stage price scans issue) must be race-free and
  // deterministic. Run under TSan via the `tsan` label.
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  const std::vector<double> budgets{10.0, 20.0, 30.0, 40.0};
  const MinerSolveOptions options;
  const auto solve_once = [&] {
    return solve_connected_nep(params, prices, budgets, options);
  };
  const MinerEquilibrium reference = solve_once();
  std::vector<MinerEquilibrium> results(4);
  std::vector<std::thread> workers;
  workers.reserve(results.size());
  for (auto& slot : results)
    workers.emplace_back([&, out = &slot] { *out = solve_once(); });
  for (auto& worker : workers) worker.join();
  for (const MinerEquilibrium& eq : results) {
    ASSERT_EQ(eq.requests.size(), reference.requests.size());
    for (std::size_t i = 0; i < eq.requests.size(); ++i) {
      EXPECT_EQ(eq.requests[i].edge, reference.requests[i].edge);
      EXPECT_EQ(eq.requests[i].cloud, reference.requests[i].cloud);
    }
  }
}

TEST(KernelEnvBuilder, ValidatesAndHoistsConstants) {
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  const KernelEnv env = make_kernel_env(params, prices, 0.9, 0.5);
  EXPECT_DOUBLE_EQ(env.effective_edge_price, 2.5);
  EXPECT_DOUBLE_EQ(env.share_coeff, 100.0 * (1.0 - 0.2));
  EXPECT_DOUBLE_EQ(env.edge_coeff, 100.0 * 0.2 * 0.9);
  EXPECT_DOUBLE_EQ(env.sigma1_sq, 0.9 * 0.2 * 100.0 / (2.5 - 1.0));
  EXPECT_DOUBLE_EQ(env.sigma2_sq, (1.0 - 0.2) * 100.0 / 1.0);
  EXPECT_THROW((void)make_kernel_env(params, {0.0, 1.0}, 0.9, 0.0),
               support::PreconditionError);
  EXPECT_THROW((void)make_kernel_env(params, prices, 0.0, 0.0),
               support::PreconditionError);
  EXPECT_THROW((void)make_kernel_env(params, prices, 0.9, -1.0),
               support::PreconditionError);
  // with_surcharge re-derives only the mu-dependent constants.
  const KernelEnv bumped = with_surcharge(env, 2.0);
  EXPECT_DOUBLE_EQ(bumped.effective_edge_price, 4.0);
  EXPECT_DOUBLE_EQ(bumped.sigma1_sq, 0.9 * 0.2 * 100.0 / (4.0 - 1.0));
  EXPECT_EQ(bumped.share_coeff, env.share_coeff);
}

}  // namespace
}  // namespace hecmine::core
