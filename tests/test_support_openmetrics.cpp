// OpenMetrics exporter tests: rendered snapshots pass the repo's own
// structural lint, name mangling, counter/gauge/histogram shapes, the
// build-info metric, corruption detection by the lint, and value parity
// between the OpenMetrics text exposition and the JSON telemetry export
// for the same registry state (including health.* gauges).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "support/health.hpp"
#include "support/json.hpp"
#include "support/openmetrics.hpp"
#include "support/telemetry.hpp"

namespace {

using namespace hecmine;

/// Value of the single-line sample `name value` in an OpenMetrics text.
double sample_value(const std::string& text, const std::string& name) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(name + " ", 0) == 0)
      return std::stod(line.substr(name.size() + 1));
  }
  ADD_FAILURE() << "no sample named " << name;
  return 0.0;
}

TEST(OpenMetricsNameTest, ManglesDotsUnderPrefix) {
  EXPECT_EQ(support::openmetrics_name("oracle.solves"),
            "hecmine_oracle_solves");
  EXPECT_EQ(support::openmetrics_name("health.nep.best_response.rho_worst"),
            "hecmine_health_nep_best_response_rho_worst");
}

TEST(OpenMetricsRenderTest, SnapshotPassesOwnLint) {
  support::Telemetry telemetry;
  telemetry.metrics.counter("oracle.solves").add(42);
  telemetry.metrics.gauge("cache.hit_rate").set(0.75);
  telemetry.metrics.histogram("solve.iterations", {1.0, 4.0, 16.0})
      .observe(3.0);
  telemetry.metrics.histogram("solve.iterations", {1.0, 4.0, 16.0})
      .observe(40.0);
  const std::string text = support::render_openmetrics(telemetry);
  const auto findings = support::lint_openmetrics(text);
  EXPECT_TRUE(findings.empty()) << [&] {
    std::ostringstream os;
    for (const auto& finding : findings) os << finding << "\n";
    return os.str();
  }();
  // Counter sample carries _total; histogram has cumulative buckets; the
  // exposition terminates with # EOF.
  EXPECT_NE(text.find("# TYPE hecmine_oracle_solves counter"),
            std::string::npos);
  EXPECT_EQ(sample_value(text, "hecmine_oracle_solves_total"), 42.0);
  EXPECT_EQ(sample_value(text, "hecmine_cache_hit_rate"), 0.75);
  EXPECT_NE(text.find("hecmine_solve_iterations_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("hecmine_build_info{"), std::string::npos);
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);
}

TEST(OpenMetricsRenderTest, EmptyRegistryStillLints) {
  support::Telemetry telemetry;
  const std::string text = support::render_openmetrics(telemetry);
  EXPECT_TRUE(support::lint_openmetrics(text).empty());
  EXPECT_NE(text.find("hecmine_build_info{"), std::string::npos);
}

TEST(OpenMetricsLintTest, CatchesCorruption) {
  support::Telemetry telemetry;
  telemetry.metrics.counter("oracle.solves").add(1);
  const std::string text = support::render_openmetrics(telemetry);

  // Missing # EOF terminator.
  std::string truncated = text.substr(0, text.rfind("# EOF"));
  EXPECT_FALSE(support::lint_openmetrics(truncated).empty());

  // Counter sample without the _total suffix.
  std::string renamed = text;
  const std::string sample = "hecmine_oracle_solves_total 1";
  const auto pos = renamed.find(sample);
  ASSERT_NE(pos, std::string::npos);
  renamed.replace(pos, sample.size(), "hecmine_oracle_solves 1");
  EXPECT_FALSE(support::lint_openmetrics(renamed).empty());

  // Unparseable sample value.
  std::string garbled = text;
  const auto vpos = garbled.find(" 1\n");
  ASSERT_NE(vpos, std::string::npos);
  garbled.replace(vpos, 3, " banana\n");
  EXPECT_FALSE(support::lint_openmetrics(garbled).empty());
}

TEST(OpenMetricsLintTest, CatchesNonCumulativeHistogram) {
  const std::string text =
      "# TYPE hecmine_h histogram\n"
      "hecmine_h_bucket{le=\"1\"} 5\n"
      "hecmine_h_bucket{le=\"2\"} 3\n"
      "hecmine_h_bucket{le=\"+Inf\"} 5\n"
      "hecmine_h_count 5\n"
      "hecmine_h_sum 4\n"
      "# EOF\n";
  EXPECT_FALSE(support::lint_openmetrics(text).empty());
}

/// Round-trip satellite: the OpenMetrics exposition reports exactly the
/// gauge values of the JSON telemetry export for the same registry state —
/// exercised through a real HealthMonitor feed so health.* gauges are part
/// of the comparison.
TEST(OpenMetricsParityTest, GaugeValuesMatchJsonExport) {
  support::Telemetry telemetry;
  support::health::HealthOptions options;
  options.action = support::health::WatchdogAction::kObserve;
  support::health::HealthMonitor monitor(telemetry, options);
  // One clean and one divergent solve populate the health gauges.
  for (int pattern = 0; pattern < 2; ++pattern) {
    const std::uint64_t solve = telemetry.probe.next_solve_id();
    double r = pattern == 0 ? 1.0 : 1e-3;
    const double ratio = pattern == 0 ? 0.5 : 1.3;
    for (int i = 0; i < 20; ++i) {
      support::IterationProbe::Record record;
      record.solver = "nep.best_response";
      record.solve = solve;
      record.iteration = i + 1;
      record.residual = r;
      record.tolerance = 1e-12;
      telemetry.probe.record(record);
      r *= ratio;
    }
  }
  telemetry.metrics.gauge("cache.hit_rate").set(0.123456789012345);

  const std::string om_text = support::render_openmetrics(telemetry);
  EXPECT_TRUE(support::lint_openmetrics(om_text).empty());

  const std::string json_path =
      testing::TempDir() + "/hecmine_om_parity.json";
  support::write_json(telemetry, json_path);
  const auto doc = support::json::parse_file(json_path);
  const auto& gauges = doc.at("gauges");
  ASSERT_TRUE(gauges.is_object());
  std::size_t compared = 0;
  for (const auto& [name, value] : gauges.as_object()) {
    EXPECT_DOUBLE_EQ(sample_value(om_text, support::openmetrics_name(name)),
                     value.as_number())
        << "gauge " << name;
    ++compared;
  }
  // The comparison must actually have covered the health gauges.
  EXPECT_GE(compared, 8u);
  EXPECT_TRUE(gauges.contains("health.nep.best_response.rho_worst"));
  EXPECT_TRUE(gauges.contains("health.incidents"));
  std::remove(json_path.c_str());
}

}  // namespace
