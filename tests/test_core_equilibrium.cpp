// Tests for core/equilibrium: the connected-mode NEP (Theorem 2), the
// standalone-mode GNEP (Theorem 5) via both the shared-price decomposition
// and the VI/extragradient path, and the symmetric fast paths.
#include "core/equilibrium.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/closed_forms.hpp"
#include "support/error.hpp"

namespace hecmine::core {
namespace {

NetworkParams default_params() {
  NetworkParams params;
  params.reward = 100.0;
  params.fork_rate = 0.2;
  params.edge_success = 0.9;
  params.edge_capacity = 8.0;
  params.cost_edge = 1.0;
  params.cost_cloud = 0.4;
  return params;
}

TEST(ConnectedNep, ConvergesAndIsUnexploitable) {
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  const std::vector<double> budgets{20.0, 30.0, 40.0, 50.0, 60.0};
  const auto eq = solve_connected_nep(params, prices, budgets);
  ASSERT_TRUE(eq.converged);
  EXPECT_NEAR(
      miner_exploitability(params, prices, budgets, eq.requests, true), 0.0,
      1e-5);
  // Totals are the sums of the individual requests.
  const Totals manual = aggregate(eq.requests);
  EXPECT_NEAR(manual.edge, eq.totals.edge, 1e-12);
  EXPECT_NEAR(manual.cloud, eq.totals.cloud, 1e-12);
}

TEST(ConnectedNep, UniqueAcrossDampingAndSweeps) {
  // Theorem 2: the NE is unique, so different dynamics find the same point.
  const NetworkParams params = default_params();
  const Prices prices{2.5, 1.0};
  const std::vector<double> budgets{25.0, 35.0, 45.0};
  MinerSolveOptions a;
  a.damping = 0.5;
  MinerSolveOptions b;
  b.damping = 0.9;
  const auto eq_a = solve_connected_nep(params, prices, budgets, a);
  const auto eq_b = solve_connected_nep(params, prices, budgets, b);
  ASSERT_TRUE(eq_a.converged);
  ASSERT_TRUE(eq_b.converged);
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    EXPECT_NEAR(eq_a.requests[i].edge, eq_b.requests[i].edge, 1e-6);
    EXPECT_NEAR(eq_a.requests[i].cloud, eq_b.requests[i].cloud, 1e-6);
  }
}

TEST(ConnectedNep, RicherMinersRequestMore) {
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  const std::vector<double> budgets{10.0, 20.0, 40.0, 80.0, 160.0};
  const auto eq = solve_connected_nep(params, prices, budgets);
  ASSERT_TRUE(eq.converged);
  for (std::size_t i = 1; i < budgets.size(); ++i) {
    EXPECT_GE(eq.requests[i].total(), eq.requests[i - 1].total() - 1e-6);
  }
}

TEST(ConnectedNep, BudgetsAreRespected) {
  const NetworkParams params = default_params();
  const Prices prices{3.0, 1.2};
  const std::vector<double> budgets{5.0, 15.0, 25.0};
  const auto eq = solve_connected_nep(params, prices, budgets);
  for (std::size_t i = 0; i < budgets.size(); ++i)
    EXPECT_LE(request_cost(eq.requests[i], prices), budgets[i] + 1e-6);
}

TEST(ConnectedNep, UtilitiesAreIndividuallyRational) {
  // Playing (0,0) yields utility 0, so NE utilities must be >= 0.
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  const std::vector<double> budgets{20.0, 30.0, 40.0};
  const auto eq = solve_connected_nep(params, prices, budgets);
  for (double u : eq.utilities) EXPECT_GE(u, -1e-8);
}

TEST(ConnectedNep, ValidatesInputs) {
  const NetworkParams params = default_params();
  EXPECT_THROW((void)solve_connected_nep(params, {0.0, 1.0}, {10.0}),
               support::PreconditionError);
  EXPECT_THROW((void)solve_connected_nep(params, {2.0, 1.0}, {}),
               support::PreconditionError);
  EXPECT_THROW((void)solve_connected_nep(params, {2.0, 1.0}, {-1.0}),
               support::PreconditionError);
}

TEST(SymmetricConnected, MatchesFullProfileSolverOnHomogeneousMiners) {
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  const double budget = 40.0;
  const int n = 5;
  const auto symmetric = solve_symmetric_connected(params, prices, budget, n);
  ASSERT_TRUE(symmetric.converged);
  const auto full = solve_connected_nep(params, prices,
                                        std::vector<double>(n, budget));
  ASSERT_TRUE(full.converged);
  for (const auto& request : full.requests) {
    EXPECT_NEAR(request.edge, symmetric.request.edge, 1e-5);
    EXPECT_NEAR(request.cloud, symmetric.request.cloud, 1e-5);
  }
}

TEST(StandaloneGnep, SlackCapacityReducesToPlainNep) {
  NetworkParams params = default_params();
  params.edge_capacity = 1e6;
  const Prices prices{2.0, 1.0};
  const std::vector<double> budgets{20.0, 30.0, 40.0};
  const auto gnep = solve_standalone_gnep(params, prices, budgets);
  ASSERT_TRUE(gnep.converged);
  EXPECT_FALSE(gnep.cap_active);
  EXPECT_DOUBLE_EQ(gnep.surcharge, 0.0);
  // h = 1 connected solve is the same game.
  NetworkParams h1 = params;
  h1.edge_success = 1.0;
  const auto nep = solve_connected_nep(h1, prices, budgets);
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    EXPECT_NEAR(gnep.requests[i].edge, nep.requests[i].edge, 1e-5);
    EXPECT_NEAR(gnep.requests[i].cloud, nep.requests[i].cloud, 1e-5);
  }
}

TEST(StandaloneGnep, BindingCapacityReachesComplementarity) {
  const NetworkParams params = default_params();  // E_max = 8
  const Prices prices{2.0, 1.0};
  const std::vector<double> budgets{30.0, 40.0, 50.0, 60.0};
  const auto gnep = solve_standalone_gnep(params, prices, budgets);
  ASSERT_TRUE(gnep.converged);
  EXPECT_TRUE(gnep.cap_active);
  EXPECT_GT(gnep.surcharge, 0.0);
  EXPECT_NEAR(gnep.totals.edge, params.edge_capacity,
              1e-5 * params.edge_capacity);
  // At the variational equilibrium no miner can gain in the mu-penalized
  // game (the KKT-equivalent decoupled game).
  EXPECT_NEAR(miner_exploitability(params, prices, budgets, gnep.requests,
                                   false, gnep.surcharge),
              0.0, 1e-5);
}

TEST(StandaloneGnep, AgreesWithExtragradientVi) {
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  const std::vector<double> budgets{30.0, 45.0, 60.0};
  const auto decomposition = solve_standalone_gnep(params, prices, budgets);
  MinerSolveOptions vi_options;
  vi_options.vi_tolerance = 1e-9;
  vi_options.max_iterations = 8000;
  const auto vi = solve_standalone_gnep_vi(params, prices, budgets, vi_options);
  ASSERT_TRUE(decomposition.converged);
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    EXPECT_NEAR(decomposition.requests[i].edge, vi.requests[i].edge, 5e-3);
    EXPECT_NEAR(decomposition.requests[i].cloud, vi.requests[i].cloud, 5e-3);
  }
  EXPECT_NEAR(decomposition.totals.edge, vi.totals.edge, 5e-3);
}

TEST(SymmetricStandalone, MatchesFullGnepOnHomogeneousMiners) {
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  const double budget = 50.0;
  const int n = 4;
  const auto symmetric = solve_symmetric_standalone(params, prices, budget, n);
  const auto full =
      solve_standalone_gnep(params, prices, std::vector<double>(n, budget));
  ASSERT_TRUE(symmetric.converged);
  ASSERT_TRUE(full.converged);
  EXPECT_EQ(symmetric.cap_active, full.cap_active);
  for (const auto& request : full.requests) {
    EXPECT_NEAR(request.edge, symmetric.request.edge, 2e-4);
    EXPECT_NEAR(request.cloud, symmetric.request.cloud, 2e-4);
  }
  EXPECT_NEAR(symmetric.surcharge, full.surcharge, 2e-3);
}

TEST(SymmetricStandalone, CapScalesEdgeDemand) {
  // Tightening E_max must not increase per-miner edge requests.
  const Prices prices{2.0, 1.0};
  double previous_edge = 1e18;
  for (double cap : {50.0, 20.0, 10.0, 5.0, 2.0}) {
    NetworkParams params = default_params();
    params.edge_capacity = cap;
    const auto eq = solve_symmetric_standalone(params, prices, 60.0, 5);
    EXPECT_LE(eq.request.edge, previous_edge + 1e-7);
    EXPECT_LE(5.0 * eq.request.edge, cap + 1e-5);
    previous_edge = eq.request.edge;
  }
}

TEST(StandaloneGnep, StandaloneBuysMoreEdgeThanConnected) {
  // Paper Sec. IV-C.3 / Table II: with the cap slack, standalone (h = 1)
  // encourages strictly more edge purchases than connected (h < 1).
  NetworkParams params = default_params();
  params.edge_capacity = 1e6;
  const Prices prices{2.0, 1.0};
  const std::vector<double> budgets{40.0, 40.0, 40.0, 40.0};
  const auto standalone = solve_standalone_gnep(params, prices, budgets);
  const auto connected = solve_connected_nep(params, prices, budgets);
  EXPECT_GT(standalone.totals.edge, connected.totals.edge);
}

}  // namespace
}  // namespace hecmine::core
