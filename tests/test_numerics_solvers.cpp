// Tests for numerics/fixed_point, numerics/pga and numerics/vi.
#include <gtest/gtest.h>

#include <cmath>

#include "numerics/fixed_point.hpp"
#include "numerics/pga.hpp"
#include "numerics/projection.hpp"
#include "numerics/vi.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace hecmine::num {
namespace {

TEST(FixedPoint, SolvesLinearContraction) {
  // x -> 0.5 x + 1 has fixed point 2.
  const auto map = [](const std::vector<double>& x) {
    return std::vector<double>{0.5 * x[0] + 1.0};
  };
  const auto result = iterate_fixed_point(map, {0.0});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.point[0], 2.0, 1e-8);
}

TEST(FixedPoint, DampingStabilizesOscillation) {
  // x -> -x + 2 oscillates undamped but converges with damping to x = 1.
  const auto map = [](const std::vector<double>& x) {
    return std::vector<double>{-x[0] + 2.0};
  };
  FixedPointOptions undamped;
  undamped.max_iterations = 50;
  EXPECT_FALSE(iterate_fixed_point(map, {0.0}, undamped).converged);
  FixedPointOptions damped;
  damped.damping = 0.5;
  const auto result = iterate_fixed_point(map, {0.0}, damped);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.point[0], 1.0, 1e-8);
}

TEST(FixedPoint, ValidatesOptionsAndDimensions) {
  const auto shrinking = [](const std::vector<double>&) {
    return std::vector<double>{};
  };
  EXPECT_THROW((void)iterate_fixed_point(shrinking, {1.0}),
               support::PreconditionError);
  FixedPointOptions bad;
  bad.damping = 0.0;
  const auto identity = [](const std::vector<double>& x) { return x; };
  EXPECT_THROW((void)iterate_fixed_point(identity, {1.0}, bad),
               support::PreconditionError);
}

TEST(Pga, MaximizesConcaveQuadraticUnconstrained) {
  const auto objective = [](const std::vector<double>& x) {
    return -(x[0] - 1.0) * (x[0] - 1.0) - 2.0 * (x[1] + 0.5) * (x[1] + 0.5);
  };
  const auto project = [](const std::vector<double>& x) { return x; };
  const auto result =
      projected_gradient_ascent(objective, nullptr, project, {5.0, 5.0});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.point[0], 1.0, 1e-5);
  EXPECT_NEAR(result.point[1], -0.5, 1e-5);
}

TEST(Pga, RespectsBudgetConstraint) {
  // max x + y subject to x + y <= 1, x,y >= 0: any point on the line is
  // optimal with value 1.
  const auto objective = [](const std::vector<double>& x) {
    return x[0] + x[1];
  };
  const auto project = [](const std::vector<double>& x) {
    return project_budget_set(x, {1.0, 1.0}, 1.0);
  };
  const auto result =
      projected_gradient_ascent(objective, nullptr, project, {0.2, 0.1});
  EXPECT_NEAR(result.value, 1.0, 1e-6);
}

TEST(Pga, UsesAnalyticGradientWhenProvided) {
  const auto objective = [](const std::vector<double>& x) {
    return -x[0] * x[0];
  };
  const auto gradient = [](const std::vector<double>& x) {
    return std::vector<double>{-2.0 * x[0]};
  };
  const auto project = [](const std::vector<double>& x) { return x; };
  const auto result =
      projected_gradient_ascent(objective, gradient, project, {3.0});
  EXPECT_NEAR(result.point[0], 0.0, 1e-6);
}

TEST(Extragradient, SolvesStronglyMonotoneLinearVI) {
  // F(x) = A x - b with A symmetric positive definite: VI over R^2 solves
  // A x = b -> x = (1, 2) for A = [[2,0],[0,4]], b = (2, 8).
  VariationalInequality problem;
  problem.map = [](const std::vector<double>& x) {
    return std::vector<double>{2.0 * x[0] - 2.0, 4.0 * x[1] - 8.0};
  };
  problem.project = [](const std::vector<double>& x) { return x; };
  const auto result = solve_extragradient(problem, {0.0, 0.0});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.point[0], 1.0, 1e-6);
  EXPECT_NEAR(result.point[1], 2.0, 1e-6);
}

TEST(Extragradient, HandlesRotationalMonotoneMap) {
  // F(x) = [[0,1],[-1,0]] x is monotone (skew) — classic case where plain
  // projection fails but extragradient converges to the solution (0, 0)
  // of VI over the box [-1,1]^2.
  VariationalInequality problem;
  problem.map = [](const std::vector<double>& x) {
    return std::vector<double>{x[1], -x[0]};
  };
  problem.project = [](const std::vector<double>& x) {
    return project_box(x, {-1.0, -1.0}, {1.0, 1.0});
  };
  ExtragradientOptions options;
  options.tolerance = 1e-7;
  const auto result = solve_extragradient(problem, {0.9, -0.7}, options);
  EXPECT_NEAR(result.point[0], 0.0, 1e-4);
  EXPECT_NEAR(result.point[1], 0.0, 1e-4);
}

TEST(Extragradient, ConstrainedSolutionOnBoundary) {
  // F(x) = x - 5: unconstrained solution 5, but K = [0, 1] -> x* = 1.
  VariationalInequality problem;
  problem.map = [](const std::vector<double>& x) {
    return std::vector<double>{x[0] - 5.0};
  };
  problem.project = [](const std::vector<double>& x) {
    return project_box(x, {0.0}, {1.0});
  };
  const auto result = solve_extragradient(problem, {0.0});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.point[0], 1.0, 1e-7);
}

TEST(NaturalResidual, ZeroAtSolutionPositiveElsewhere) {
  VariationalInequality problem;
  problem.map = [](const std::vector<double>& x) {
    return std::vector<double>{x[0] - 2.0};
  };
  problem.project = [](const std::vector<double>& x) { return x; };
  EXPECT_NEAR(natural_residual(problem, {2.0}), 0.0, 1e-12);
  EXPECT_GT(natural_residual(problem, {0.0}), 1.0);
}

TEST(MonotonicityQuotient, DistinguishesMonotoneFromNot) {
  support::Rng rng{31};
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 20; ++i)
    points.push_back({rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)});
  const auto monotone = [](const std::vector<double>& x) {
    return std::vector<double>{3.0 * x[0], 2.0 * x[1]};
  };
  EXPECT_GE(monotonicity_quotient(monotone, points), 2.0 - 1e-9);
  const auto antitone = [](const std::vector<double>& x) {
    return std::vector<double>{-x[0], -x[1]};
  };
  EXPECT_LE(monotonicity_quotient(antitone, points), -1.0 + 1e-9);
}

}  // namespace
}  // namespace hecmine::num
