// Tests for the logging facility.
#include "support/log.hpp"

#include <gtest/gtest.h>

namespace hecmine::support {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrips) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, EmitsAtOrAboveTheLevel) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  ::testing::internal::CaptureStderr();
  log_debug("hidden debug");
  log_info("hidden info");
  log_warn("visible warn ", 42);
  log_error("visible error");
  const std::string output = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(output.find("hidden"), std::string::npos);
  EXPECT_NE(output.find("[warn] visible warn 42"), std::string::npos);
  EXPECT_NE(output.find("[error] visible error"), std::string::npos);
}

TEST(Log, DebugLevelShowsEverything) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  log_debug("a=", 1, " b=", 2.5);
  const std::string output = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("[debug] a=1 b=2.5"), std::string::npos);
}

TEST(Log, MessagesEndWithNewline) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  log_info("line");
  const std::string output = ::testing::internal::GetCapturedStderr();
  ASSERT_FALSE(output.empty());
  EXPECT_EQ(output.back(), '\n');
}

}  // namespace
}  // namespace hecmine::support
