// Equilibrium auditor + convergence-probe acceptance tests (label:
// audit). The probe-backed tests drive real solves with an armed
// IterationProbe streaming JSONL, parse the stream back with the JSON
// reader, and check the residual trajectories the ISSUE promises: a
// connected-NEP and a standalone-GNEP solve both produce monotone
// (running-min) decreasing residual series ending below the solver
// tolerance.
#include "core/audit.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/oracle.hpp"
#include "core/scenario.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/telemetry.hpp"

namespace hecmine::core {
namespace {

NetworkParams default_params() {
  NetworkParams params;
  params.reward = 100.0;
  params.fork_rate = 0.2;
  params.edge_success = 0.9;
  params.edge_capacity = 8.0;
  params.cost_edge = 1.0;
  params.cost_cloud = 0.4;
  return params;
}

Scenario make_scenario(std::vector<double> budgets, EdgeMode mode) {
  Scenario scenario;
  scenario.params = default_params();
  scenario.mode = mode;
  scenario.budgets = std::move(budgets);
  return scenario;
}

/// Runs one follower solve with the probe armed and streaming to a temp
/// JSONL file, returns the parsed per-iteration records (header skipped).
std::vector<support::json::Value> probe_records(const Scenario& scenario,
                                                const Prices& prices,
                                                const std::string& tag) {
  const std::string path =
      testing::TempDir() + "/hecmine_iterlog_" + tag + ".jsonl";
  {
    // Scoped so the probe's stream is closed (and flushed) before the
    // file is read back.
    support::Telemetry telemetry;
    telemetry.probe.stream_to(path);
    SolveContext context;
    context.telemetry = &telemetry;
    const auto oracle = make_follower_oracle(
        scenario.params, scenario.budgets, scenario.mode, context);
    const EquilibriumProfile profile = oracle->solve(prices);
    EXPECT_TRUE(profile.converged);
    EXPECT_GT(telemetry.probe.total(), 0u);
  }
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  auto lines = support::json::parse_lines(buffer.str());
  EXPECT_GE(lines.size(), 2u);
  EXPECT_EQ(lines.front().at("schema").as_string(), "hecmine.iterlog.v1");
  lines.erase(lines.begin());
  return lines;
}

/// Residual series for one solver label. Solvers that run several nested
/// solves (the GNEP's surcharge search re-solves the inner NEP per mu)
/// contribute one series per solve id; the longest one is the cold-start
/// trajectory whose shape the acceptance criterion describes — warm
/// restarts near the fixed point may converge in a single sweep.
std::vector<double> longest_solve_residuals(
    const std::vector<support::json::Value>& records,
    const std::string& solver) {
  std::map<double, std::vector<double>> by_solve;
  for (const auto& record : records) {
    if (record.at("solver").as_string() != solver) continue;
    by_solve[record.at("solve").as_number()].push_back(
        record.at("residual").as_number());
  }
  std::vector<double> longest;
  for (const auto& [solve, series] : by_solve)
    if (series.size() > longest.size()) longest = series;
  return longest;
}

/// The series must be monotone non-increasing (tiny relative slack for
/// floating-point ties) and end strictly below the solver tolerance.
void expect_decreasing_below(const std::vector<double>& residuals,
                             double tolerance) {
  ASSERT_GE(residuals.size(), 2u);
  for (std::size_t i = 1; i < residuals.size(); ++i) {
    EXPECT_LE(residuals[i], residuals[i - 1] * (1.0 + 1e-12))
        << "residual rose at iteration " << i;
  }
  EXPECT_LT(residuals.back(), tolerance);
  EXPECT_LT(residuals.back(), residuals.front());
}

TEST(IterationLog, ConnectedNepResidualsDecreaseBelowTolerance) {
  // Heterogeneous budgets force the full best-response NEP (not the
  // symmetric closed-form path).
  const Scenario scenario =
      make_scenario({25.0, 35.0, 45.0}, EdgeMode::kConnected);
  const auto records = probe_records(scenario, {2.0, 1.0}, "nep");
  const auto residuals = longest_solve_residuals(records, "nep.best_response");
  // MinerSolveOptions.nash tolerance is 1e-9; the recorded residual of the
  // converging iteration sits below it.
  expect_decreasing_below(residuals, 1e-9);
}

TEST(IterationLog, StandaloneGnepInnerResidualsDecreaseBelowTolerance) {
  const Scenario scenario =
      make_scenario({25.0, 35.0, 45.0}, EdgeMode::kStandalone);
  const auto records = probe_records(scenario, {2.2, 1.0}, "gnep");
  const auto residuals = longest_solve_residuals(records, "gnep.inner");
  expect_decreasing_below(residuals, 1e-9);
  // The bisection layer also reported its surcharge trajectory.
  bool saw_bisection = false;
  for (const auto& record : records)
    if (record.at("solver").as_string() == "gnep.bisection")
      saw_bisection = true;
  EXPECT_TRUE(saw_bisection);
}

TEST(IterationLog, RecordsCarryPricesAndAggregates) {
  const Scenario scenario =
      make_scenario({25.0, 35.0, 45.0}, EdgeMode::kConnected);
  const auto records = probe_records(scenario, {2.0, 1.0}, "fields");
  ASSERT_FALSE(records.empty());
  for (const auto& record : records) {
    EXPECT_DOUBLE_EQ(record.at("price_edge").as_number(), 2.0);
    EXPECT_DOUBLE_EQ(record.at("price_cloud").as_number(), 1.0);
    EXPECT_GE(record.at("total_edge").as_number(), 0.0);
    EXPECT_GE(record.at("total_cloud").as_number(), 0.0);
    EXPECT_GE(record.at("iteration").as_number(), 0.0);
    EXPECT_TRUE(record.at("cap_active").is_bool());
  }
}

// --- auditor on closed-form scenarios -------------------------------------

TEST(Audit, TableIiConnectedEquilibriumPassesAllChecks) {
  // Homogeneous connected scenario: the solver reproduces the Table II /
  // Corollary 1 closed form, so the audit certificate must be clean.
  const Scenario scenario =
      make_scenario(std::vector<double>(5, 200.0), EdgeMode::kConnected);
  const Prices prices{2.0, 1.0};
  SolveContext context;
  const EquilibriumProfile profile = solve_followers(
      scenario.params, prices, scenario.budgets, scenario.mode, context);
  const AuditReport report = audit_equilibrium(scenario, prices, profile);
  EXPECT_TRUE(report.converged);
  EXPECT_LE(report.best_response_gap, 1e-6);
  EXPECT_DOUBLE_EQ(report.capacity_violation, 0.0);
  EXPECT_GE(report.min_budget_slack, -1e-9);
  EXPECT_TRUE(report.uniqueness_ok);
  EXPECT_GT(report.monotonicity_quotient, 0.0);
  ASSERT_EQ(report.budget_slack.size(), 5u);
}

TEST(Audit, BindingBudgetScenarioHasZeroSlack) {
  // Tight budgets: Theorem 3's binding branch spends the budget exactly.
  const Scenario scenario =
      make_scenario(std::vector<double>(5, 10.0), EdgeMode::kConnected);
  const Prices prices{2.0, 1.0};
  const EquilibriumProfile profile =
      solve_followers(scenario.params, prices, scenario.budgets,
                      scenario.mode, SolveContext{});
  const AuditReport report = audit_equilibrium(scenario, prices, profile);
  EXPECT_LE(report.best_response_gap, 1e-6);
  EXPECT_NEAR(report.min_budget_slack, 0.0, 1e-8);
}

TEST(Audit, StandaloneEquilibriumRespectsCapacity) {
  const Scenario scenario =
      make_scenario({25.0, 35.0, 45.0}, EdgeMode::kStandalone);
  const Prices prices{2.2, 1.0};
  const EquilibriumProfile profile =
      solve_followers(scenario.params, prices, scenario.budgets,
                      scenario.mode, SolveContext{});
  const AuditReport report = audit_equilibrium(scenario, prices, profile);
  EXPECT_DOUBLE_EQ(report.capacity_violation, 0.0);
  EXPECT_LE(report.best_response_gap, 1e-5);
}

TEST(Audit, DetectsANonEquilibriumProfile) {
  // Hand the auditor a deliberately wrong profile: the gap certificate
  // must light up even though nothing "failed" in a solver.
  const Scenario scenario =
      make_scenario(std::vector<double>(5, 200.0), EdgeMode::kConnected);
  const Prices prices{2.0, 1.0};
  EquilibriumProfile bogus = solve_followers(
      scenario.params, prices, scenario.budgets, scenario.mode,
      SolveContext{});
  ASSERT_TRUE(bogus.symmetric);
  ASSERT_FALSE(bogus.requests.empty());
  bogus.requests[0].edge *= 0.5;  // half the equilibrium edge demand
  bogus.totals.edge *= 0.5;       // symmetric: totals track the one entry
  const AuditReport report = audit_equilibrium(scenario, prices, bogus);
  EXPECT_GT(report.best_response_gap, 1e-3);
}

TEST(Audit, RejectsMismatchedProfiles) {
  const Scenario scenario =
      make_scenario(std::vector<double>(5, 200.0), EdgeMode::kConnected);
  const Prices prices{2.0, 1.0};
  const Scenario smaller =
      make_scenario(std::vector<double>(3, 200.0), EdgeMode::kConnected);
  const EquilibriumProfile profile =
      solve_followers(smaller.params, prices, smaller.budgets, smaller.mode,
                      SolveContext{});
  EXPECT_THROW((void)audit_equilibrium(scenario, prices, profile),
               support::PreconditionError);
}

TEST(Audit, LeaderGapShrinksAtTheLeaderOptimum) {
  // At non-optimal prices a unilateral rescale improves some SP's profit;
  // the audit exposes that as a positive leader gap. (The converse — a
  // near-zero gap at the scanned optimum — is covered by the CLI smoke
  // and the bench ledger, which audit the SP-stage solution.)
  const Scenario scenario =
      make_scenario(std::vector<double>(5, 200.0), EdgeMode::kConnected);
  const Prices low{0.5, 0.25};  // far below revenue-optimal
  const EquilibriumProfile profile =
      solve_followers(scenario.params, low, scenario.budgets, scenario.mode,
                      SolveContext{});
  const AuditReport report = audit_equilibrium(scenario, low, profile);
  EXPECT_GT(std::max(report.leader_gap_edge, report.leader_gap_cloud), 0.0);
}

TEST(Audit, RecordAuditExportsGauges) {
  const Scenario scenario =
      make_scenario(std::vector<double>(5, 200.0), EdgeMode::kConnected);
  const Prices prices{2.0, 1.0};
  const EquilibriumProfile profile =
      solve_followers(scenario.params, prices, scenario.budgets,
                      scenario.mode, SolveContext{});
  const AuditReport report = audit_equilibrium(scenario, prices, profile);
  support::Telemetry telemetry;
  record_audit(telemetry, report);
  EXPECT_DOUBLE_EQ(
      telemetry.metrics.gauge("audit.best_response_gap").value(),
      report.best_response_gap);
  EXPECT_DOUBLE_EQ(
      telemetry.metrics.gauge("audit.capacity_violation").value(),
      report.capacity_violation);
  EXPECT_DOUBLE_EQ(telemetry.metrics.gauge("audit.uniqueness_ok").value(),
                   report.uniqueness_ok ? 1.0 : 0.0);
}

TEST(Audit, PrintRendersEveryMetric) {
  const Scenario scenario =
      make_scenario(std::vector<double>(5, 200.0), EdgeMode::kConnected);
  const Prices prices{2.0, 1.0};
  const EquilibriumProfile profile =
      solve_followers(scenario.params, prices, scenario.budgets,
                      scenario.mode, SolveContext{});
  std::ostringstream os;
  print_audit(os, audit_equilibrium(scenario, prices, profile));
  const std::string text = os.str();
  for (const char* label :
       {"best_response_gap", "min_budget_slack", "capacity_violation",
        "monotonicity_quotient", "uniqueness_ok", "leader_gap_edge"}) {
    EXPECT_NE(text.find(label), std::string::npos) << label;
  }
}

}  // namespace
}  // namespace hecmine::core
