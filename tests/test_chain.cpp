// Tests for the chain substrate: the PoW race must reproduce the paper's
// winning probabilities (Section III) by Monte Carlo, and the ledger must
// keep honest tallies.
#include <gtest/gtest.h>

#include <cmath>

#include "chain/block.hpp"
#include "chain/race.hpp"
#include "chain/simulator.hpp"
#include "core/winning.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace hecmine::chain {
namespace {

constexpr std::size_t kRounds = 300000;

std::vector<core::MinerRequest> to_requests(
    const std::vector<Allocation>& allocations) {
  std::vector<core::MinerRequest> requests(allocations.size());
  for (std::size_t i = 0; i < allocations.size(); ++i)
    requests[i] = {allocations[i].edge_units, allocations[i].cloud_units};
  return requests;
}

TEST(Race, EmptyPoolYieldsNoWinner) {
  support::Rng rng{51};
  const auto outcome = run_race({{0.0, 0.0}, {0.0, 0.0}}, {}, rng);
  EXPECT_FALSE(outcome.has_value());
}

TEST(Race, ValidatesInputs) {
  support::Rng rng{52};
  RaceConfig bad;
  bad.fork_rate = 1.0;
  EXPECT_THROW((void)run_race({{1.0, 0.0}}, bad, rng),
               support::PreconditionError);
  EXPECT_THROW((void)run_race({{-1.0, 0.0}}, {}, rng),
               support::PreconditionError);
}

TEST(Race, SingleMinerAlwaysWins) {
  support::Rng rng{53};
  RaceConfig config;
  config.fork_rate = 0.5;
  for (int i = 0; i < 1000; ++i) {
    const auto outcome = run_race({{1.0, 2.0}}, config, rng);
    ASSERT_TRUE(outcome.has_value());
    EXPECT_EQ(outcome->winner, 0u);
  }
}

TEST(Race, SolveTimeIsExponentialInTotalPower) {
  support::Rng rng{54};
  RaceConfig config;
  config.fork_rate = 0.0;
  config.unit_hash_rate = 2.0;
  support::Accumulator times;
  for (std::size_t i = 0; i < 100000; ++i) {
    const auto outcome = run_race({{3.0, 0.0}, {0.0, 2.0}}, config, rng);
    times.add(outcome->solve_time);
  }
  // Mean = 1 / (S * rate) = 1 / 10.
  EXPECT_NEAR(times.mean(), 0.1, 0.002);
}

TEST(Race, WithoutForksWinRateIsProportionalToPower) {
  MiningSimulator simulator({0.0, 1.0, 1.0}, 55);
  const std::vector<Allocation> allocations{{4.0, 0.0}, {0.0, 1.0}};
  const auto tally = simulator.run(allocations, kRounds);
  EXPECT_NEAR(tally.win_rate(0), 0.8, 0.005);
  EXPECT_NEAR(tally.win_rate(1), 0.2, 0.005);
  EXPECT_EQ(tally.forks, 0u);
}

TEST(Race, WinRatesMatchPaperEquation6) {
  // The generative race must reproduce W_i^h for a heterogeneous profile.
  const double beta = 0.3;
  MiningSimulator simulator({beta, 1.0, 1.0}, 56);
  const std::vector<Allocation> allocations{
      {2.0, 1.0}, {1.0, 3.0}, {0.5, 2.5}};
  const auto requests = to_requests(allocations);
  const core::Totals totals = core::aggregate(requests);
  const auto tally = simulator.run(allocations, kRounds);
  for (std::size_t i = 0; i < allocations.size(); ++i) {
    EXPECT_NEAR(tally.win_rate(i),
                core::win_prob_full(requests[i], totals, beta), 0.005)
        << "miner " << i;
  }
}

TEST(Race, ForkFrequencyMatchesBetaTimesCloudShare) {
  // Forks only threaten cloud-solved blocks: P(fork) = beta * C / S.
  const double beta = 0.4;
  MiningSimulator simulator({beta, 1.0, 1.0}, 57);
  const std::vector<Allocation> allocations{{3.0, 0.0}, {0.0, 5.0}};
  const auto tally = simulator.run(allocations, kRounds);
  const double fork_rate =
      static_cast<double>(tally.forks) / static_cast<double>(tally.rounds);
  EXPECT_NEAR(fork_rate, beta * 5.0 / 8.0, 0.005);
}

TEST(Race, AllCloudNetworkHasNoForkSteals) {
  MiningSimulator simulator({0.5, 1.0, 1.0}, 58);
  const std::vector<Allocation> allocations{{0.0, 2.0}, {0.0, 3.0}};
  const auto tally = simulator.run(allocations, kRounds / 10);
  EXPECT_EQ(tally.steals, 0u);
  EXPECT_NEAR(tally.win_rate(0), 0.4, 0.01);
}

TEST(Race, SelfConflictDoesNotStealTheReward) {
  // One miner holds all edge power: any conflict lands on itself when it
  // also solves first in the cloud, so its combined share is 1 against an
  // empty field... use two miners: miner 0 all edge, miner 1 all cloud.
  // Miner 1's cloud block survives with probability (1 - beta); a fork
  // always belongs to miner 0.
  const double beta = 0.25;
  MiningSimulator simulator({beta, 1.0, 1.0}, 59);
  const std::vector<Allocation> allocations{{2.0, 0.0}, {0.0, 2.0}};
  const auto tally = simulator.run(allocations, kRounds);
  const auto requests = to_requests(allocations);
  const core::Totals totals = core::aggregate(requests);
  EXPECT_NEAR(tally.win_rate(1),
              core::win_prob_full(requests[1], totals, beta), 0.005);
}

TEST(Ledger, TracksOwnershipAndForks) {
  Ledger ledger;
  ledger.append({.height = 0, .owner = 1, .source = BlockSource::kEdge,
                 .solve_time = 0.5, .fork_resolved = false});
  ledger.append({.height = 0, .owner = 1, .source = BlockSource::kCloud,
                 .solve_time = 0.7, .fork_resolved = true});
  ledger.append({.height = 0, .owner = 0, .source = BlockSource::kEdge,
                 .solve_time = 0.2, .fork_resolved = false});
  EXPECT_EQ(ledger.height(), 3u);
  EXPECT_EQ(ledger.blocks_owned_by(1), 2u);
  EXPECT_EQ(ledger.blocks_owned_by(0), 1u);
  EXPECT_EQ(ledger.orphan_count(), 1u);
  EXPECT_NEAR(ledger.fork_fraction(), 1.0 / 3.0, 1e-12);
  // Heights are assigned sequentially by the ledger.
  EXPECT_EQ(ledger.blocks()[2].height, 2u);
}

TEST(Simulator, LedgerGrowsWithRounds) {
  MiningSimulator simulator({0.2, 1.0, 1.0}, 60);
  const std::vector<Allocation> allocations{{1.0, 1.0}, {2.0, 0.5}};
  (void)simulator.run(allocations, 500);
  EXPECT_EQ(simulator.ledger().height(), 500u);
  const auto& blocks = simulator.ledger().blocks();
  std::size_t edge_blocks = 0;
  for (const auto& block : blocks)
    if (block.source == BlockSource::kEdge) ++edge_blocks;
  EXPECT_GT(edge_blocks, 0u);
  EXPECT_LT(edge_blocks, blocks.size());
}

TEST(Simulator, WinTallyValidatesIndex) {
  WinTally tally;
  tally.wins = {1, 2};
  tally.rounds = 3;
  EXPECT_THROW((void)tally.win_rate(2), support::PreconditionError);
  EXPECT_NEAR(tally.win_rate(1), 2.0 / 3.0, 1e-12);
}

TEST(Simulator, DeterministicUnderSeed) {
  const std::vector<Allocation> allocations{{1.0, 2.0}, {2.0, 1.0}};
  MiningSimulator a({0.3, 1.0, 1.0}, 61);
  MiningSimulator b({0.3, 1.0, 1.0}, 61);
  const auto tally_a = a.run(allocations, 2000);
  const auto tally_b = b.run(allocations, 2000);
  EXPECT_EQ(tally_a.wins, tally_b.wins);
  EXPECT_EQ(tally_a.forks, tally_b.forks);
}

}  // namespace
}  // namespace hecmine::chain
