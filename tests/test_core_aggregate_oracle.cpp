// Tests for the ClassAggregateOracle (core/aggregate_oracle.hpp): the
// K-dimensional class fixed point must land on the same equilibrium as the
// dense per-miner solvers (Theorem 2's uniqueness makes the NE symmetric
// within budget classes), lazy per-miner expansion must be transparent to
// every consumer, and make_profile_oracle must honor the opt-in dispatch
// rules. Registered under the `aggregate` ctest label.
#include "core/aggregate_oracle.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/audit.hpp"
#include "core/equilibrium_cache.hpp"
#include "core/oracle.hpp"
#include "core/scenario.hpp"
#include "core/sp.hpp"
#include "core/welfare.hpp"
#include "support/error.hpp"

namespace hecmine::core {
namespace {

// Documented parity tolerance between the aggregate and dense solvers: both
// iterate to a 1e-9 movement tolerance around the unique equilibrium, so
// per-miner requests agree to ~1e-6 resource units at reward scale 100.
constexpr double kParityTol = 1e-5;

NetworkParams default_params() {
  NetworkParams params;
  params.reward = 100.0;
  params.fork_rate = 0.2;
  params.edge_success = 0.9;
  params.edge_capacity = 8.0;
  params.cost_edge = 1.0;
  params.cost_cloud = 0.4;
  return params;
}

// Three budget classes over five miners, with duplicates in arbitrary order.
std::vector<double> few_class_budgets() { return {120.0, 50.0, 120.0, 50.0, 200.0}; }

TEST(ClassPartition, ExactKeysBucketDuplicatesAndSortAscending) {
  const auto partition = partition_budget_classes(few_class_budgets());
  ASSERT_EQ(partition.classes.size(), 3u);
  EXPECT_EQ(partition.classes[0].budget, 50.0);
  EXPECT_EQ(partition.classes[0].count, 2);
  EXPECT_EQ(partition.classes[1].budget, 120.0);
  EXPECT_EQ(partition.classes[1].count, 2);
  EXPECT_EQ(partition.classes[2].budget, 200.0);
  EXPECT_EQ(partition.classes[2].count, 1);
  const std::vector<std::uint32_t> expected{1, 0, 1, 0, 2};
  EXPECT_EQ(partition.class_of, expected);
}

TEST(ClassPartition, QuantizationCollapsesNearEqualBudgets) {
  const std::vector<double> budgets{100.0, 100.4, 99.6, 150.0};
  const auto exact = partition_budget_classes(budgets);
  EXPECT_EQ(exact.classes.size(), 4u);
  const auto coarse = partition_budget_classes(budgets, 1.0);
  ASSERT_EQ(coarse.classes.size(), 2u);
  EXPECT_EQ(coarse.classes[0].budget, 100.0);
  EXPECT_EQ(coarse.classes[0].count, 3);
  EXPECT_EQ(coarse.classes[1].budget, 150.0);
  EXPECT_EQ(coarse.classes[1].count, 1);
}

TEST(ClassPartition, RejectsNegativeInputs) {
  EXPECT_THROW((void)partition_budget_classes({-1.0}),
               support::PreconditionError);
  EXPECT_THROW((void)partition_budget_classes({1.0}, -0.5),
               support::PreconditionError);
}

TEST(ClassAggregateOracleParity, ConnectedMatchesDenseNepPerMiner) {
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  const std::vector<double> budgets = few_class_budgets();
  const auto dense = ConnectedNepOracle(params, budgets).solve(prices);
  const auto aggregate =
      ClassAggregateOracle(params, budgets, EdgeMode::kConnected)
          .solve(prices);
  ASSERT_TRUE(dense.converged);
  ASSERT_TRUE(aggregate.converged);
  EXPECT_TRUE(aggregate.class_shaped());
  EXPECT_EQ(aggregate.miner_count, dense.miner_count);
  EXPECT_NEAR(aggregate.totals.edge, dense.totals.edge, kParityTol);
  EXPECT_NEAR(aggregate.totals.cloud, dense.totals.cloud, kParityTol);
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    EXPECT_NEAR(aggregate.request(i).edge, dense.request(i).edge, kParityTol);
    EXPECT_NEAR(aggregate.request(i).cloud, dense.request(i).cloud,
                kParityTol);
    EXPECT_NEAR(aggregate.utility(i), dense.utility(i), kParityTol);
  }
}

TEST(ClassAggregateOracleParity, StandaloneMatchesDenseGnepWithActiveCap) {
  NetworkParams params = default_params();
  params.edge_capacity = 4.0;  // small cap so the shared constraint binds
  const Prices prices{1.5, 1.0};
  const std::vector<double> budgets = few_class_budgets();
  const auto dense =
      StandaloneGnepOracle(params, budgets, GnepAlgorithm::kSharedPrice)
          .solve(prices);
  const auto aggregate =
      ClassAggregateOracle(params, budgets, EdgeMode::kStandalone)
          .solve(prices);
  ASSERT_TRUE(dense.converged);
  ASSERT_TRUE(aggregate.converged);
  EXPECT_EQ(aggregate.cap_active, dense.cap_active);
  EXPECT_NEAR(aggregate.totals.edge, dense.totals.edge, 1e-4);
  EXPECT_NEAR(aggregate.surcharge, dense.surcharge, 1e-3);
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    EXPECT_NEAR(aggregate.request(i).edge, dense.request(i).edge, 1e-4);
    EXPECT_NEAR(aggregate.request(i).cloud, dense.request(i).cloud, 1e-4);
    EXPECT_NEAR(aggregate.utility(i), dense.utility(i), 1e-3);
  }
}

TEST(ClassAggregateOracleParity, HomogeneousPoolMatchesSymmetricOracle) {
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  const std::vector<double> budgets(6, 40.0);
  const auto symmetric =
      SymmetricFollowerOracle(params, 40.0, 6, EdgeMode::kConnected)
          .solve(prices);
  const auto aggregate =
      ClassAggregateOracle(params, budgets, EdgeMode::kConnected)
          .solve(prices);
  ASSERT_TRUE(aggregate.converged);
  EXPECT_EQ(ClassAggregateOracle(params, budgets, EdgeMode::kConnected)
                .class_count(),
            1);
  EXPECT_NEAR(aggregate.request(0).edge, symmetric.request().edge, kParityTol);
  EXPECT_NEAR(aggregate.request(0).cloud, symmetric.request().cloud,
              kParityTol);
}

TEST(ClassAggregateOracle, ExpansionIsExactlyClassSymmetric) {
  const NetworkParams params = default_params();
  const auto profile =
      ClassAggregateOracle(params, few_class_budgets(), EdgeMode::kConnected)
          .solve({2.0, 1.0});
  // Miners 1 and 3 share budget 50, miners 0 and 2 share budget 120: their
  // lazily expanded requests are the same object, hence bitwise equal.
  EXPECT_EQ(profile.request(1).edge, profile.request(3).edge);
  EXPECT_EQ(profile.request(0).cloud, profile.request(2).cloud);
  EXPECT_EQ(profile.utility(1), profile.utility(3));
  const auto expanded = profile.expanded();
  ASSERT_EQ(expanded.size(), 5u);
  EXPECT_EQ(expanded[0].edge, expanded[2].edge);
  EXPECT_THROW((void)profile.request(5), support::PreconditionError);
  // Totals equal the count-weighted class sum.
  double edge = 0.0;
  for (const auto& request : expanded) edge += request.edge;
  EXPECT_NEAR(profile.totals.edge, edge, 1e-9);
}

TEST(ClassAggregateOracle, SolveIsBitwiseIdenticalAcrossThreadCounts) {
  const NetworkParams params = default_params();
  const std::vector<double> budgets = few_class_budgets();
  for (EdgeMode mode : {EdgeMode::kConnected, EdgeMode::kStandalone}) {
    SolveContext serial;
    serial.threads = 1;
    SolveContext parallel;
    parallel.threads = 4;
    const auto a = ClassAggregateOracle(params, budgets, mode,
                                        serial.follower)
                       .solve({2.0, 1.0});
    const auto b = ClassAggregateOracle(params, budgets, mode,
                                        parallel.follower)
                       .solve({2.0, 1.0});
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t k = 0; k < a.requests.size(); ++k) {
      EXPECT_EQ(a.requests[k].edge, b.requests[k].edge);
      EXPECT_EQ(a.requests[k].cloud, b.requests[k].cloud);
      EXPECT_EQ(a.utilities[k], b.utilities[k]);
    }
    EXPECT_EQ(a.totals.edge, b.totals.edge);
    EXPECT_EQ(a.surcharge, b.surcharge);
  }
}

TEST(ProfileOracleDispatch, DefaultContextNeverPicksTheAggregateOracle) {
  const NetworkParams params = default_params();
  const auto oracle = make_profile_oracle(params, few_class_budgets(),
                                          EdgeMode::kConnected, {});
  EXPECT_EQ(dynamic_cast<const ClassAggregateOracle*>(oracle.get()), nullptr);
  EXPECT_NE(dynamic_cast<const ConnectedNepOracle*>(oracle.get()), nullptr);
}

TEST(ProfileOracleDispatch, ThresholdAndClassCapGateTheAggregateOracle) {
  const NetworkParams params = default_params();
  const std::vector<double> budgets = few_class_budgets();
  SolveContext context;
  context.aggregate.dispatch_threshold = 4;
  // Pool size 5 >= threshold 4 and K = 3 <= max_classes: aggregate.
  auto oracle =
      make_profile_oracle(params, budgets, EdgeMode::kConnected, context);
  EXPECT_NE(dynamic_cast<const ClassAggregateOracle*>(oracle.get()), nullptr);
  // Pool smaller than the threshold: dense.
  context.aggregate.dispatch_threshold = 6;
  oracle = make_profile_oracle(params, budgets, EdgeMode::kConnected, context);
  EXPECT_EQ(dynamic_cast<const ClassAggregateOracle*>(oracle.get()), nullptr);
  // Too many classes for the cap: dense.
  context.aggregate.dispatch_threshold = 4;
  context.aggregate.max_classes = 2;
  oracle = make_profile_oracle(params, budgets, EdgeMode::kConnected, context);
  EXPECT_EQ(dynamic_cast<const ClassAggregateOracle*>(oracle.get()), nullptr);
  // Standalone pools dispatch identically.
  context.aggregate.max_classes = 64;
  oracle = make_profile_oracle(params, budgets, EdgeMode::kStandalone, context);
  EXPECT_NE(dynamic_cast<const ClassAggregateOracle*>(oracle.get()), nullptr);
}

TEST(ProfileOracleDispatch, MakeFollowerOracleRoutesHeterogeneousPools) {
  const NetworkParams params = default_params();
  SolveContext context;
  context.aggregate.dispatch_threshold = 2;
  // No cache/telemetry: the factory returns the bare aggregate oracle.
  const auto oracle = make_follower_oracle(params, few_class_budgets(),
                                           EdgeMode::kConnected, context);
  EXPECT_NE(dynamic_cast<const ClassAggregateOracle*>(oracle.get()), nullptr);
  // Homogeneous pools keep the symmetric fast path regardless of the
  // aggregate opt-in.
  const auto homogeneous = make_follower_oracle(
      params, std::vector<double>(8, 40.0), EdgeMode::kConnected, context);
  EXPECT_EQ(dynamic_cast<const ClassAggregateOracle*>(homogeneous.get()),
            nullptr);
}

TEST(ClassAggregateOracle, LazyExpansionSurvivesTheCacheDecorator) {
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  FollowerEquilibriumCache cache(64);
  auto inner = std::make_unique<ClassAggregateOracle>(
      params, few_class_budgets(), EdgeMode::kConnected);
  const auto direct = inner->solve(prices);
  CachedFollowerOracle cached(std::move(inner), cache);
  const auto miss = cached.solve(prices);
  const auto hit = cached.solve(prices);
  EXPECT_EQ(cache.stats().hits, 1u);
  for (const auto* profile : {&miss, &hit}) {
    ASSERT_TRUE(profile->class_shaped());
    ASSERT_EQ(profile->requests.size(), 3u);
    EXPECT_EQ(profile->expanded().size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(profile->request(i).edge, direct.request(i).edge);
      EXPECT_EQ(profile->utility(i), direct.utility(i));
    }
  }
}

TEST(ClassAggregateOracle, EnvHashSeparatesShapeModeAndQuantum) {
  const NetworkParams params = default_params();
  const std::vector<double> budgets = few_class_budgets();
  const ClassAggregateOracle connected(params, budgets, EdgeMode::kConnected);
  const ClassAggregateOracle standalone(params, budgets,
                                        EdgeMode::kStandalone);
  const ClassAggregateOracle quantized(params, budgets, EdgeMode::kConnected,
                                       {}, 1.0);
  const ClassAggregateOracle reordered(params, {50.0, 120.0, 120.0, 50.0, 200.0},
                                       EdgeMode::kConnected);
  EXPECT_NE(connected.env_hash(), standalone.env_hash());
  EXPECT_NE(connected.env_hash(), quantized.env_hash());
  // Same multiset, different per-miner order: request(i) answers differ,
  // so the identities must too.
  EXPECT_NE(connected.env_hash(), reordered.env_hash());
  // The aggregate oracle never shares a key with the dense oracle.
  EXPECT_NE(connected.env_hash(),
            ConnectedNepOracle(params, budgets).env_hash());
}

TEST(ClassAggregateOracle, LeaderStageAndConsumersAcceptClassProfiles) {
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  const std::vector<double> budgets = few_class_budgets();
  SolveContext context;
  context.aggregate.dispatch_threshold = 2;
  const auto profile =
      make_follower_oracle(params, budgets, EdgeMode::kConnected, context)
          ->solve(prices);
  ASSERT_TRUE(profile.class_shaped());
  // welfare: the O(K) class path equals the expanded per-miner sum.
  const double class_sum = aggregate_utility(params, prices, profile);
  EquilibriumProfile dense_view = profile;
  dense_view.requests = profile.expanded();
  dense_view.utilities.clear();
  for (std::size_t i = 0; i < budgets.size(); ++i)
    dense_view.utilities.push_back(profile.utility(i));
  dense_view.classes.reset();
  EXPECT_NEAR(class_sum, aggregate_utility(params, prices, dense_view), 1e-9);
  // audit: full and sampled certificates accept the class shape.
  Scenario scenario;
  scenario.params = params;
  scenario.mode = EdgeMode::kConnected;
  scenario.budgets = budgets;
  AuditOptions audit_options;
  audit_options.context = context;
  const AuditReport full = audit_equilibrium(scenario, prices, profile,
                                             audit_options);
  EXPECT_LE(full.best_response_gap, 1e-6 * params.reward);
  audit_options.max_audited_miners = 3;
  const AuditReport sampled = audit_equilibrium(scenario, prices, profile,
                                                audit_options);
  EXPECT_EQ(sampled.budget_slack.size(), 3u);
  EXPECT_LE(sampled.best_response_gap, full.best_response_gap + 1e-12);
  // legacy conversion expands utilities through the class map.
  const MinerEquilibrium legacy = to_miner_equilibrium(profile);
  ASSERT_EQ(legacy.requests.size(), budgets.size());
  ASSERT_EQ(legacy.utilities.size(), budgets.size());
  EXPECT_EQ(legacy.utilities[1], legacy.utilities[3]);
}

TEST(ClassAggregateOracle, LeaderStagePricesMatchDenseWithAggregateDispatch) {
  const NetworkParams params = default_params();
  const std::vector<double> budgets{50.0, 50.0, 120.0};
  SpSolveOptions options;
  options.grid_points = 6;
  options.max_rounds = 4;
  options.tolerance = 1e-2;
  // One shared cache serves both runs: the aggregate oracle's env_hash
  // differs from the dense one, so entries never cross-contaminate.
  FollowerEquilibriumCache cache(1 << 14);
  options.context.cache = &cache;
  // Scan-grade follower tolerances (the symmetric leader path caps scan
  // solves the same way); exploitability certification keeps the returned
  // equilibria honest, and both runs share the settings.
  options.context.follower.max_iterations = 600;
  options.context.follower.tolerance = 1e-7;
  const LeaderStageResult dense =
      solve_leader_stage(params, budgets, EdgeMode::kConnected, options);
  options.context.aggregate.dispatch_threshold = 2;
  const LeaderStageResult aggregate =
      solve_leader_stage(params, budgets, EdgeMode::kConnected, options);
  // Follower parity makes the leader profit surfaces match, so the scans
  // land on the same prices up to the leader tolerance.
  EXPECT_NEAR(aggregate.prices.edge, dense.prices.edge, 1e-2);
  EXPECT_NEAR(aggregate.prices.cloud, dense.prices.cloud, 1e-2);
  EXPECT_NEAR(aggregate.followers.totals.edge, dense.followers.totals.edge,
              1e-2);
}

}  // namespace
}  // namespace hecmine::core
