// Work-counter profiling tests: counter arithmetic, the single-writer
// thread-block discipline, deterministic WorkProfile totals under
// concurrent pool tasks, the TelemetryScope TLS install/restore contract,
// per-span work attribution, PerfSampler graceful degradation, and the
// hot-path report built from a synthetic hecmine.trace.v1 document.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/json.hpp"
#include "support/parallel.hpp"
#include "support/prof.hpp"
#include "support/prof_report.hpp"
#include "support/telemetry.hpp"

namespace {

using namespace hecmine;
namespace prof = support::prof;
using prof::WorkField;

TEST(WorkCounters, FieldArithmeticAndEvals) {
  prof::WorkCounters work;
  EXPECT_FALSE(work.any());
  work[WorkField::kSweeps] = 3;
  work[WorkField::kBestResponseEvals] = 10;
  work[WorkField::kUtilityEvals] = 5;
  work[WorkField::kGradientEvals] = 2;
  EXPECT_TRUE(work.any());
  EXPECT_EQ(work.evals(), 17u);

  prof::WorkCounters other;
  other[WorkField::kSweeps] = 1;
  other[WorkField::kCacheHits] = 7;
  work += other;
  EXPECT_EQ(work[WorkField::kSweeps], 4u);
  EXPECT_EQ(work[WorkField::kCacheHits], 7u);

  const prof::WorkCounters delta = work.delta_since(other);
  EXPECT_EQ(delta[WorkField::kSweeps], 3u);
  EXPECT_EQ(delta[WorkField::kCacheHits], 0u);
  EXPECT_EQ(delta[WorkField::kBestResponseEvals], 10u);

  EXPECT_EQ(work.delta_since(work), prof::WorkCounters{});
}

TEST(WorkCounters, FieldNamesAreStableAndDistinct) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < prof::kWorkFieldCount; ++i)
    names.emplace_back(prof::work_field_name(static_cast<WorkField>(i)));
  EXPECT_EQ(names.front(), "sweeps");
  EXPECT_EQ(names.back(), "soa_bytes_moved");
  for (std::size_t i = 0; i < names.size(); ++i)
    for (std::size_t j = i + 1; j < names.size(); ++j)
      EXPECT_NE(names[i], names[j]);
}

TEST(ThreadWorkBlock, AddAndSnapshot) {
  prof::ThreadWorkBlock block;
  block.add(WorkField::kSweeps, 2);
  block.add(WorkField::kSweeps, 3);
  prof::WorkCounters bulk;
  bulk[WorkField::kSoaBytesMoved] = 1024;
  block.add(bulk);
  const prof::WorkCounters snap = block.snapshot();
  EXPECT_EQ(snap[WorkField::kSweeps], 5u);
  EXPECT_EQ(snap[WorkField::kSoaBytesMoved], 1024u);
  EXPECT_EQ(snap[WorkField::kCacheHits], 0u);
}

TEST(WorkProfile, LocalBlockIsStablePerThread) {
  prof::WorkProfile profile;
  prof::ThreadWorkBlock* first = &profile.local();
  prof::ThreadWorkBlock* second = &profile.local();
  EXPECT_EQ(first, second);
  EXPECT_EQ(profile.thread_count(), 1);

  prof::ThreadWorkBlock* other = nullptr;
  std::thread worker([&] { other = &profile.local(); });
  worker.join();
  EXPECT_NE(other, first);
  EXPECT_EQ(profile.thread_count(), 2);
}

TEST(WorkProfile, TotalIsDeterministicAcrossThreadCounts) {
  // The same logical work split across different worker counts must sum
  // to the identical total — the determinism contract the bench counter
  // gate stands on.
  constexpr std::uint64_t kTasks = 64;
  std::vector<prof::WorkCounters> totals;
  for (const int threads : {1, 2, 4}) {
    prof::WorkProfile profile;
    support::parallel_for(
        kTasks,
        [&](std::size_t i) {
          prof::ThreadWorkBlock& block = profile.local();
          block.add(WorkField::kSweeps, 1);
          block.add(WorkField::kBestResponseEvals, i);
        },
        threads);
    totals.push_back(profile.total());
  }
  for (const auto& total : totals) {
    EXPECT_EQ(total[WorkField::kSweeps], kTasks);
    EXPECT_EQ(total[WorkField::kBestResponseEvals],
              kTasks * (kTasks - 1) / 2);
    EXPECT_EQ(total, totals.front());
  }
}

TEST(WorkProfile, TelemetryScopeInstallsAndRestoresCurrentBlock) {
  EXPECT_EQ(prof::current_block(), nullptr);
  support::Telemetry outer_sink;
  {
    const support::TelemetryScope outer(&outer_sink);
    prof::ThreadWorkBlock* outer_block = prof::current_block();
    ASSERT_NE(outer_block, nullptr);
    outer_block->add(WorkField::kSweeps, 1);

    support::Telemetry inner_sink;
    {
      const support::TelemetryScope inner(&inner_sink);
      ASSERT_NE(prof::current_block(), nullptr);
      EXPECT_NE(prof::current_block(), outer_block);
      prof::current_block()->add(WorkField::kSweeps, 10);
    }
    // Nested scope exit restores the outer sink's block.
    EXPECT_EQ(prof::current_block(), outer_block);
    EXPECT_EQ(inner_sink.work.total()[WorkField::kSweeps], 10u);
  }
  EXPECT_EQ(prof::current_block(), nullptr);
  EXPECT_EQ(outer_sink.work.total()[WorkField::kSweeps], 1u);
}

TEST(WorkProfile, NullSinkScopeSuppressesCounting) {
  support::Telemetry sink;
  const support::TelemetryScope outer(&sink);
  {
    const support::TelemetryScope off(nullptr);
    EXPECT_EQ(prof::current_block(), nullptr);
  }
  EXPECT_NE(prof::current_block(), nullptr);
}

TEST(WorkProfile, SpanWorkAttributionIsInclusivePerSpan) {
  support::Telemetry sink;
  const support::TelemetryScope scope(&sink);
  {
    const support::SolveTrace::Scope outer(&sink.trace, "leader.round");
    prof::current_block()->add(WorkField::kSweeps, 2);
    {
      const support::SolveTrace::Scope inner(&sink.trace, "oracle.solve");
      prof::current_block()->add(WorkField::kSweeps, 5);
      prof::current_block()->add(WorkField::kBestResponseEvals, 40);
    }
    prof::current_block()->add(WorkField::kSweeps, 1);
  }
  const auto spans = sink.trace.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Span order is start order: outer first. Work deltas are inclusive.
  EXPECT_TRUE(spans[0].closed);
  EXPECT_EQ(spans[0].work[WorkField::kSweeps], 8u);
  EXPECT_EQ(spans[0].work[WorkField::kBestResponseEvals], 40u);
  EXPECT_EQ(spans[1].work[WorkField::kSweeps], 5u);
  EXPECT_EQ(spans[1].work[WorkField::kBestResponseEvals], 40u);
}

TEST(PerfSampler, DefaultIsOffAndReadsZero) {
  prof::PerfSampler sampler;
  EXPECT_FALSE(sampler.live());
  EXPECT_EQ(sampler.status(), "off");
  const prof::PerfSample sample = sampler.read();
  EXPECT_FALSE(sample.any());
}

TEST(PerfSampler, OpenEitherGoesLiveOrExplainsWhy) {
  // Containers commonly deny perf_event_open (perf_event_paranoid); the
  // sampler must degrade gracefully either way, never crash.
  prof::PerfSampler sampler;
  const bool live = sampler.open();
  if (live) {
    EXPECT_EQ(sampler.status(), "on");
    // A live counter group should advance while we burn some cycles.
    const prof::PerfSample before = sampler.read();
    volatile double sink_value = 0.0;
    for (int i = 0; i < 100000; ++i) sink_value = sink_value + 1.0;
    const prof::PerfSample after = sampler.read();
    EXPECT_GE(after.instructions, before.instructions);
  } else {
    EXPECT_EQ(sampler.status().rfind("unavailable: ", 0), 0u)
        << sampler.status();
    EXPECT_FALSE(sampler.read().any());
  }
}

TEST(ProfReport, BuildsExclusiveCostsFromSyntheticTrace) {
  // leader.round [0, 10ms] with 8 sweeps / 100 br evals inclusive;
  // oracle.solve [2ms, 8ms] nested inside with 6 sweeps / 90 br evals.
  const std::string trace = R"({
    "schema": "hecmine.trace.v1",
    "traceEvents": [
      {"name": "leader.round", "ph": "X", "ts": 0.0, "dur": 10000.0,
       "pid": 1, "tid": 0,
       "args": {"id": 0, "depth": 0,
                "work": {"sweeps": 8, "best_response_evals": 100}}},
      {"name": "oracle.solve", "ph": "X", "ts": 2000.0, "dur": 6000.0,
       "pid": 1, "tid": 0,
       "args": {"id": 1, "parent": 0, "depth": 1,
                "work": {"sweeps": 6, "best_response_evals": 90}}}
    ]})";
  const prof::Report report =
      prof::build_report(support::json::parse(trace));
  ASSERT_EQ(report.rows.size(), 2u);
  EXPECT_EQ(report.spans, 2u);
  EXPECT_DOUBLE_EQ(report.total_ms, 10.0);

  // Rows sort by exclusive self-time: oracle.solve (6ms) first.
  const auto& oracle = report.rows[0];
  EXPECT_EQ(oracle.name, "oracle.solve");
  EXPECT_DOUBLE_EQ(oracle.exclusive_ms, 6.0);
  EXPECT_EQ(oracle.exclusive_work[WorkField::kBestResponseEvals], 90u);

  const auto& leader = report.rows[1];
  EXPECT_EQ(leader.name, "leader.round");
  EXPECT_DOUBLE_EQ(leader.inclusive_ms, 10.0);
  EXPECT_DOUBLE_EQ(leader.exclusive_ms, 4.0);
  // Exclusive work = inclusive minus the nested child's share.
  EXPECT_EQ(leader.exclusive_work[WorkField::kSweeps], 2u);
  EXPECT_EQ(leader.exclusive_work[WorkField::kBestResponseEvals], 10u);
  EXPECT_EQ(leader.inclusive_work[WorkField::kBestResponseEvals], 100u);

  EXPECT_EQ(report.total_work[WorkField::kSweeps], 8u);
  EXPECT_EQ(report.total_work[WorkField::kBestResponseEvals], 100u);

  std::ostringstream out;
  prof::print_report(out, report);
  EXPECT_NE(out.str().find("oracle.solve"), std::string::npos);
  EXPECT_NE(out.str().find("total work:"), std::string::npos);
}

TEST(ProfReport, EmptyTraceYieldsEmptyReport) {
  const prof::Report report = prof::build_report(
      support::json::parse(R"({"traceEvents": []})"));
  EXPECT_TRUE(report.rows.empty());
  EXPECT_EQ(report.spans, 0u);
  EXPECT_FALSE(report.total_work.any());
}

}  // namespace
