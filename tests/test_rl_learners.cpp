// Tests for the extended learner family (UCB1, Boltzmann) and the learner
// selection / learning-curve features of the trainer.
#include <gtest/gtest.h>

#include <cmath>

#include "core/oracle.hpp"
#include "rl/learner.hpp"
#include "rl/trainer.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace hecmine::rl {
namespace {

const std::vector<double> kArmMeans{1.0, 3.0, 2.0, -1.0};

template <typename L>
std::size_t run_bandit(L& learner, int steps, std::uint64_t seed) {
  support::Rng rng{seed};
  for (int step = 0; step < steps; ++step) {
    const std::size_t arm = learner.select(rng);
    learner.update(arm, kArmMeans[arm] + rng.normal(0.0, 0.5));
    learner.end_round();
  }
  return learner.best_action();
}

TEST(Ucb1, FindsBestArm) {
  Ucb1Learner learner(kArmMeans.size(), 1.0);
  EXPECT_EQ(run_bandit(learner, 3000, 11), 1u);
}

TEST(Ucb1, PlaysEveryArmFirst) {
  Ucb1Learner learner(3, 1.0);
  support::Rng rng{12};
  std::vector<bool> seen(3, false);
  for (int i = 0; i < 3; ++i) {
    const std::size_t arm = learner.select(rng);
    EXPECT_FALSE(seen[arm]);  // never repeats before covering all arms
    seen[arm] = true;
    learner.update(arm, 0.0);
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Ucb1, Validates) {
  EXPECT_THROW(Ucb1Learner(0, 1.0), support::PreconditionError);
  EXPECT_THROW(Ucb1Learner(2, -1.0), support::PreconditionError);
  Ucb1Learner learner(2, 1.0);
  EXPECT_THROW(learner.update(5, 0.0), support::PreconditionError);
}

TEST(Boltzmann, FindsBestArmAndCools) {
  BoltzmannLearner learner(kArmMeans.size(), 5.0, 0.2, 0.995, 0.01);
  EXPECT_EQ(run_bandit(learner, 4000, 13), 1u);
  EXPECT_NEAR(learner.temperature(), 0.01, 1e-12);  // hit the floor
}

TEST(Boltzmann, HighTemperatureIsNearUniform) {
  BoltzmannLearner learner(3, 1e6, 0.2, 1.0, 1e6);
  learner.update(0, 10.0);
  learner.update(1, -10.0);
  learner.update(2, 0.0);
  support::Rng rng{14};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) ++counts[learner.select(rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 800);
}

TEST(Boltzmann, Validates) {
  EXPECT_THROW(BoltzmannLearner(0, 1.0, 0.1, 0.9, 0.1),
               support::PreconditionError);
  EXPECT_THROW(BoltzmannLearner(2, 0.0, 0.1, 0.9, 0.1),
               support::PreconditionError);
  EXPECT_THROW(BoltzmannLearner(2, 1.0, 0.0, 0.9, 0.1),
               support::PreconditionError);
  EXPECT_THROW(BoltzmannLearner(2, 1.0, 0.1, 0.9, 0.0),
               support::PreconditionError);
}

TEST(LearnerInterface, PolymorphicUseThroughBasePointer) {
  std::vector<std::unique_ptr<Learner>> learners;
  learners.push_back(std::make_unique<BanditLearner>(4, 0.2, 0.1));
  learners.push_back(std::make_unique<Ucb1Learner>(4, 1.0));
  learners.push_back(std::make_unique<BoltzmannLearner>(4, 3.0, 0.2, 0.99, 0.05));
  support::Rng rng{15};
  for (auto& learner : learners) {
    for (int step = 0; step < 2000; ++step) {
      const std::size_t arm = learner->select(rng);
      learner->update(arm, kArmMeans[arm] + rng.normal(0.0, 0.3));
      learner->end_round();
    }
    EXPECT_EQ(learner->best_action(), 1u);
  }
}

core::NetworkParams trainer_params() {
  core::NetworkParams params;
  params.reward = 100.0;
  params.fork_rate = 0.2;
  params.edge_success = 0.9;
  params.edge_capacity = 20.0;
  return params;
}

class LearnerKindTest : public ::testing::TestWithParam<LearnerKind> {};

TEST_P(LearnerKindTest, AllLearnersConvergeNearTheSymmetricNe) {
  const core::NetworkParams params = trainer_params();
  const core::Prices prices{2.0, 1.0};
  const double budget = 12.0;
  const core::PopulationModel fixed(5.0, 0.0, 1, 5);
  TrainerConfig config;
  config.blocks = 12000;
  config.edge_steps = 13;
  config.cloud_steps = 13;
  config.learner = GetParam();
  config.epsilon_decay = 0.9995;
  config.epsilon_floor = 0.05;
  // UCB's bonus scales with the reward range; a small coefficient suits
  // the flat contest payoffs.
  config.ucb_exploration = 0.15;
  config.edge_success = 0.9;
  const auto trained =
      train_miners(params, prices, budget, fixed, config, 1234);
  const auto analytic = core::solve_followers_symmetric(
      params, prices, budget, 5, core::EdgeMode::kConnected);
  ASSERT_TRUE(analytic.converged);
  const double edge_step = (budget / prices.edge) / 12.0;
  EXPECT_NEAR(trained.mean.edge, analytic.request().edge, 2.0 * edge_step);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, LearnerKindTest,
                         ::testing::Values(LearnerKind::kEpsilonGreedy,
                                           LearnerKind::kUcb1,
                                           LearnerKind::kBoltzmann));

TEST(LearningCurve, RecordedAtTheRequestedStride) {
  const core::NetworkParams params = trainer_params();
  const core::PopulationModel fixed(3.0, 0.0, 1, 3);
  TrainerConfig config;
  config.blocks = 100;
  config.curve_stride = 20;
  config.edge_steps = 5;
  config.cloud_steps = 5;
  const auto trained =
      train_miners(params, {2.0, 1.0}, 10.0, fixed, config, 77);
  ASSERT_EQ(trained.curve.size(), 5u);
  EXPECT_EQ(trained.curve.front().block, 20);
  EXPECT_EQ(trained.curve.back().block, 100);
  // The last curve point equals the final greedy mean.
  EXPECT_DOUBLE_EQ(trained.curve.back().mean_greedy.edge, trained.mean.edge);
}

TEST(LearningCurve, OffByDefault) {
  const core::NetworkParams params = trainer_params();
  const core::PopulationModel fixed(3.0, 0.0, 1, 3);
  TrainerConfig config;
  config.blocks = 50;
  config.edge_steps = 5;
  config.cloud_steps = 5;
  const auto trained =
      train_miners(params, {2.0, 1.0}, 10.0, fixed, config, 78);
  EXPECT_TRUE(trained.curve.empty());
}

}  // namespace
}  // namespace hecmine::rl
