// Flight-recorder tests: JSONL stream shape (header + snapshot lines,
// every line parseable), manifest embedding, explicit and periodic
// flushing, rotation once the file outgrows max_bytes, and clean shutdown
// semantics (final flush on stop, flush_now a no-op afterwards).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/json.hpp"
#include "support/telemetry.hpp"

namespace {

using namespace hecmine;
using support::json::Value;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(FlightRecorder, StreamStartsWithManifestHeader) {
  support::Telemetry telemetry;
  telemetry.manifest = support::provenance::collect(4, 99);
  const std::string path = testing::TempDir() + "/hecmine_flight_hdr.jsonl";
  {
    support::TelemetryFlusher::Options options;
    options.interval = std::chrono::milliseconds(10'000);  // manual only
    support::TelemetryFlusher flusher(telemetry, path, options);
    flusher.stop();
  }
  const auto lines = support::json::parse_lines(slurp(path));
  ASSERT_GE(lines.size(), 1u);
  EXPECT_EQ(lines[0].at("schema").as_string(), "hecmine.flight.v1");
  EXPECT_EQ(lines[0].at("manifest").at("schema").as_string(),
            "hecmine.manifest.v1");
  EXPECT_DOUBLE_EQ(lines[0].at("manifest").at("seed").as_number(), 99.0);
  std::remove(path.c_str());
}

TEST(FlightRecorder, SnapshotLinesCarryLiveInstrumentValues) {
  support::Telemetry telemetry;
  telemetry.metrics.counter("fl.count").add(3);
  telemetry.metrics.gauge("fl.gauge").set(0.5);
  telemetry.metrics.histogram("fl.hist", {1.0, 2.0}).observe(1.5);
  const std::string path = testing::TempDir() + "/hecmine_flight_vals.jsonl";
  {
    support::TelemetryFlusher::Options options;
    options.interval = std::chrono::milliseconds(10'000);
    support::TelemetryFlusher flusher(telemetry, path, options);
    flusher.flush_now();
    telemetry.metrics.counter("fl.count").add(4);
    flusher.flush_now();
    EXPECT_EQ(flusher.flushes(), 2u);
    flusher.stop();  // final flush
    EXPECT_EQ(flusher.flushes(), 3u);
  }
  const auto lines = support::json::parse_lines(slurp(path));
  ASSERT_EQ(lines.size(), 4u);  // header + three snapshots
  const Value& first = lines[1];
  const Value& second = lines[2];
  EXPECT_DOUBLE_EQ(first.at("seq").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(second.at("seq").as_number(), 1.0);
  EXPECT_GE(first.at("uptime_ms").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(first.at("counters").at("fl.count").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(second.at("counters").at("fl.count").as_number(), 7.0);
  EXPECT_DOUBLE_EQ(first.at("gauges").at("fl.gauge").as_number(), 0.5);
  const Value& hist = first.at("histograms").at("fl.hist");
  EXPECT_DOUBLE_EQ(hist.at("count").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").as_number(), 1.5);
  EXPECT_TRUE(hist.contains("p50"));
  EXPECT_TRUE(hist.contains("p95"));
  EXPECT_TRUE(hist.contains("p99"));
  std::remove(path.c_str());
}

TEST(FlightRecorder, PeriodicThreadFlushesOnItsOwn) {
  support::Telemetry telemetry;
  telemetry.metrics.counter("fl.ticks").add();
  const std::string path = testing::TempDir() + "/hecmine_flight_tick.jsonl";
  {
    support::TelemetryFlusher::Options options;
    options.interval = std::chrono::milliseconds(5);
    support::TelemetryFlusher flusher(telemetry, path, options);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (flusher.flushes() < 2 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_GE(flusher.flushes(), 2u);
  }
  for (const Value& line : support::json::parse_lines(slurp(path)))
    EXPECT_TRUE(line.is_object());  // every line parses
  std::remove(path.c_str());
}

TEST(FlightRecorder, RotatesPastMaxBytesAndKeepsOneGeneration) {
  support::Telemetry telemetry;
  // Plenty of instruments so each snapshot line is a few hundred bytes.
  for (int i = 0; i < 16; ++i)
    telemetry.metrics.counter("fl.rot." + std::to_string(i)).add();
  const std::string path = testing::TempDir() + "/hecmine_flight_rot.jsonl";
  const std::string rotated = path + ".1";
  std::remove(rotated.c_str());
  {
    support::TelemetryFlusher::Options options;
    options.interval = std::chrono::milliseconds(10'000);
    options.max_bytes = 512;  // force rotations quickly
    support::TelemetryFlusher flusher(telemetry, path, options);
    for (int i = 0; i < 12; ++i) flusher.flush_now();
    flusher.stop();
    EXPECT_GE(flusher.rotations(), 1u);
  }
  // Both generations exist and each starts with a fresh header.
  for (const std::string& file : {path, rotated}) {
    ASSERT_TRUE(std::filesystem::exists(file)) << file;
    const auto lines = support::json::parse_lines(slurp(file));
    ASSERT_GE(lines.size(), 1u) << file;
    EXPECT_EQ(lines[0].at("schema").as_string(), "hecmine.flight.v1");
  }
  std::remove(path.c_str());
  std::remove(rotated.c_str());
}

TEST(FlightRecorder, StopIsIdempotentAndDisablesFlushNow) {
  support::Telemetry telemetry;
  const std::string path = testing::TempDir() + "/hecmine_flight_stop.jsonl";
  support::TelemetryFlusher::Options options;
  options.interval = std::chrono::milliseconds(10'000);
  support::TelemetryFlusher flusher(telemetry, path, options);
  flusher.stop();
  const std::uint64_t after_stop = flusher.flushes();
  EXPECT_GE(after_stop, 1u);  // the final flush
  flusher.stop();  // idempotent
  flusher.flush_now();  // no-op once the stream is closed
  EXPECT_EQ(flusher.flushes(), after_stop);
  std::remove(path.c_str());
}

}  // namespace
