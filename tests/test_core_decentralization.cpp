// Tests for core/decentralization metrics.
#include "core/decentralization.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/oracle.hpp"
#include "support/error.hpp"

namespace hecmine::core {
namespace {

TEST(Decentralization, UniformSharesAreMaximallyEven) {
  const std::vector<double> uniform(5, 0.2);
  EXPECT_NEAR(herfindahl_index(uniform), 0.2, 1e-12);
  EXPECT_NEAR(gini_coefficient(uniform), 0.0, 1e-12);
  EXPECT_EQ(nakamoto_coefficient(uniform), 3u);
  EXPECT_NEAR(effective_miners(uniform), 5.0, 1e-9);
}

TEST(Decentralization, MonopolyIsMaximallyConcentrated) {
  const std::vector<double> monopoly{1.0, 0.0, 0.0, 0.0};
  EXPECT_NEAR(herfindahl_index(monopoly), 1.0, 1e-12);
  EXPECT_EQ(nakamoto_coefficient(monopoly), 1u);
  EXPECT_NEAR(gini_coefficient(monopoly), 0.75, 1e-12);  // (n-1)/n
}

TEST(Decentralization, ScaleInvariant) {
  const std::vector<double> shares{2.0, 3.0, 5.0};
  std::vector<double> scaled{20.0, 30.0, 50.0};
  EXPECT_NEAR(herfindahl_index(shares), herfindahl_index(scaled), 1e-12);
  EXPECT_NEAR(gini_coefficient(shares), gini_coefficient(scaled), 1e-12);
  EXPECT_EQ(nakamoto_coefficient(shares), nakamoto_coefficient(scaled));
}

TEST(Decentralization, HandComputedExample) {
  const std::vector<double> shares{0.5, 0.25, 0.25};
  EXPECT_NEAR(herfindahl_index(shares), 0.375, 1e-12);
  EXPECT_EQ(nakamoto_coefficient(shares), 2u);
  // Gini: mean |xi-xj| over pairs = (0+.25+.25+.25+0+0+.25+0+0)/9 = 1/9;
  // mean = 1/3 -> gini = (1/9)/(2/3) = 1/6.
  EXPECT_NEAR(gini_coefficient(shares), 1.0 / 6.0, 1e-12);
}

TEST(Decentralization, Validates) {
  EXPECT_THROW((void)herfindahl_index({}), support::PreconditionError);
  EXPECT_THROW((void)herfindahl_index({0.0, 0.0}),
               support::PreconditionError);
  EXPECT_THROW((void)gini_coefficient({1.0, -0.5}),
               support::PreconditionError);
}

TEST(Decentralization, WinningSharesSumToOne) {
  const std::vector<MinerRequest> profile{{2.0, 1.0}, {1.0, 3.0}, {0.5, 2.0}};
  const auto shares = winning_shares(profile, 0.25);
  double total = 0.0;
  for (double share : shares) total += share;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Decentralization, BudgetInequalityConcentratesBlockProduction) {
  NetworkParams params;
  params.reward = 1000.0;  // budgets bind across the sweep
  params.fork_rate = 0.2;
  params.edge_success = 0.9;
  const Prices prices{2.0, 1.0};
  const auto equal =
      solve_followers(params, prices, {50, 50, 50, 50}, EdgeMode::kConnected);
  const auto skewed =
      solve_followers(params, prices, {10, 20, 60, 110}, EdgeMode::kConnected);
  const auto shares_equal =
      winning_shares(equal.expanded(), params.fork_rate);
  const auto shares_skewed =
      winning_shares(skewed.expanded(), params.fork_rate);
  EXPECT_GT(herfindahl_index(shares_skewed),
            herfindahl_index(shares_equal));
  EXPECT_GT(gini_coefficient(shares_skewed),
            gini_coefficient(shares_equal));
}

TEST(Decentralization, StandaloneCapEqualizesEdgeAccess) {
  // With heterogeneous budgets, the standalone shared constraint levels
  // rich miners' edge requests (the surcharge binds them all equally), so
  // block production is less concentrated than in connected mode.
  NetworkParams params;
  params.reward = 1000.0;
  params.fork_rate = 0.3;
  params.edge_success = 0.9;
  params.edge_capacity = 6.0;
  const Prices prices{2.0, 1.0};
  const std::vector<double> budgets{10.0, 20.0, 60.0, 120.0};
  const auto connected =
      solve_followers(params, prices, budgets, EdgeMode::kConnected);
  const auto standalone =
      solve_followers(params, prices, budgets, EdgeMode::kStandalone);
  const double hhi_connected =
      herfindahl_index(winning_shares(connected.requests, params.fork_rate));
  const double hhi_standalone =
      herfindahl_index(winning_shares(standalone.requests, params.fork_rate));
  EXPECT_LE(hhi_standalone, hhi_connected + 1e-9);
}

}  // namespace
}  // namespace hecmine::core
