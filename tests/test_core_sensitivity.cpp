// Tests for core/sensitivity: analytic comparative statics vs central
// finite differences of the closed forms, and the signed claims the paper
// reads off its figures.
#include "core/sensitivity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/closed_forms.hpp"
#include "support/error.hpp"

namespace hecmine::core {
namespace {

NetworkParams default_params() {
  NetworkParams params;
  params.reward = 100.0;
  params.fork_rate = 0.2;
  params.edge_success = 0.9;
  params.edge_capacity = 4.0;
  params.cost_edge = 1.0;
  params.cost_cloud = 0.4;
  return params;
}

template <typename F>
double fd(F value_of, double x, double step) {
  return (value_of(x + step) - value_of(x - step)) / (2.0 * step);
}

TEST(BindingSensitivity, MatchesFiniteDifferences) {
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  const double budget = 10.0;
  const int n = 5;
  const auto s = binding_request_sensitivity(params, prices, budget, n);
  const double step = 1e-6;

  const auto e_of_pe = [&](double pe) {
    return homogeneous_binding_request(params, {pe, prices.cloud}, budget, n)
        .edge;
  };
  EXPECT_NEAR(s.de_dprice_edge, fd(e_of_pe, prices.edge, step),
              1e-4 * std::abs(s.de_dprice_edge) + 1e-8);
  const auto e_of_pc = [&](double pc) {
    return homogeneous_binding_request(params, {prices.edge, pc}, budget, n)
        .edge;
  };
  EXPECT_NEAR(s.de_dprice_cloud, fd(e_of_pc, prices.cloud, step),
              1e-4 * std::abs(s.de_dprice_cloud) + 1e-8);
  const auto e_of_beta = [&](double beta) {
    NetworkParams p = params;
    p.fork_rate = beta;
    return homogeneous_binding_request(p, prices, budget, n).edge;
  };
  EXPECT_NEAR(s.de_dfork_rate, fd(e_of_beta, params.fork_rate, step),
              1e-4 * std::abs(s.de_dfork_rate) + 1e-8);

  const auto c_of_pe = [&](double pe) {
    return homogeneous_binding_request(params, {pe, prices.cloud}, budget, n)
        .cloud;
  };
  EXPECT_NEAR(s.dc_dprice_edge, fd(c_of_pe, prices.edge, step),
              1e-4 * std::abs(s.dc_dprice_edge) + 1e-8);
  const auto c_of_pc = [&](double pc) {
    return homogeneous_binding_request(params, {prices.edge, pc}, budget, n)
        .cloud;
  };
  EXPECT_NEAR(s.dc_dprice_cloud, fd(c_of_pc, prices.cloud, step),
              1e-4 * std::abs(s.dc_dprice_cloud) + 1e-6);
  const auto c_of_beta = [&](double beta) {
    NetworkParams p = params;
    p.fork_rate = beta;
    return homogeneous_binding_request(p, prices, budget, n).cloud;
  };
  EXPECT_NEAR(s.dc_dfork_rate, fd(c_of_beta, params.fork_rate, step),
              1e-4 * std::abs(s.dc_dfork_rate) + 1e-6);
}

TEST(SufficientSensitivity, MatchesFiniteDifferences) {
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  const int n = 5;
  const auto s = sufficient_request_sensitivity(params, prices, n);
  const double step = 1e-6;

  const auto e_of_pe = [&](double pe) {
    return homogeneous_sufficient_request(params, {pe, prices.cloud}, n).edge;
  };
  EXPECT_NEAR(s.de_dprice_edge, fd(e_of_pe, prices.edge, step),
              1e-4 * std::abs(s.de_dprice_edge) + 1e-8);
  const auto c_of_pc = [&](double pc) {
    return homogeneous_sufficient_request(params, {prices.edge, pc}, n).cloud;
  };
  EXPECT_NEAR(s.dc_dprice_cloud, fd(c_of_pc, prices.cloud, step),
              1e-4 * std::abs(s.dc_dprice_cloud) + 1e-6);
  const auto e_of_beta = [&](double beta) {
    NetworkParams p = params;
    p.fork_rate = beta;
    return homogeneous_sufficient_request(p, prices, n).edge;
  };
  EXPECT_NEAR(s.de_dfork_rate, fd(e_of_beta, params.fork_rate, step),
              1e-4 * std::abs(s.de_dfork_rate) + 1e-8);
}

TEST(Sensitivity, SignsMatchThePaperReadings) {
  // Fig. 4: raising P_c pushes e* up, c* down. Fig. 5: raising beta (more
  // delay) pushes e* up, c* down. Raising P_e pushes e* down.
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  for (bool binding : {true, false}) {
    const RequestSensitivity s =
        binding ? binding_request_sensitivity(params, prices, 10.0, 5)
                : sufficient_request_sensitivity(params, prices, 5);
    EXPECT_GT(s.de_dprice_cloud, 0.0) << "binding=" << binding;
    EXPECT_LT(s.dc_dprice_cloud, 0.0) << "binding=" << binding;
    EXPECT_LT(s.de_dprice_edge, 0.0) << "binding=" << binding;
    EXPECT_GT(s.dc_dprice_edge, 0.0) << "binding=" << binding;
    EXPECT_GT(s.de_dfork_rate, 0.0) << "binding=" << binding;
    EXPECT_LT(s.dc_dfork_rate, 0.0) << "binding=" << binding;
  }
}

TEST(SpPriceSensitivity, EspPriceRisesWithItsCost) {
  // Fig. 8's claim, quantified: dP_e*/dC_e > 0 in connected mode; the
  // standalone sell-out price is cost-independent (set by capacity).
  const NetworkParams params = default_params();
  SpSolveOptions options;
  options.grid_points = 24;
  options.max_rounds = 25;
  const auto connected = sp_price_sensitivity(
      params, 40.0, 5, EdgeMode::kConnected, 0.1, options);
  EXPECT_GT(connected.dpe_dcost_edge, 0.0);
  EXPECT_THROW((void)sp_price_sensitivity(params, 40.0, 5,
                                          EdgeMode::kConnected, 2.0, options),
               support::PreconditionError);
}

}  // namespace
}  // namespace hecmine::core
