// Trace-timeline tests: Chrome Trace Event export round-trips through the
// project's own JSON parser, spans record monotonic start times and
// parent/child nesting (including across pool workers, where each
// recording thread becomes its own timeline track), and the run manifest
// is embedded in every trace document.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/json.hpp"
#include "support/parallel.hpp"
#include "support/telemetry.hpp"

namespace {

using namespace hecmine;
using support::json::Value;

/// The "X" (complete) events of a parsed trace document.
std::vector<const Value*> complete_events(const Value& doc) {
  std::vector<const Value*> events;
  for (const Value& event : doc.at("traceEvents").as_array()) {
    if (event.at("ph").as_string() == "X") events.push_back(&event);
  }
  return events;
}

TEST(TraceExport, EmptyTraceIsStillAValidDocument) {
  support::Telemetry telemetry;
  const Value doc = support::json::parse(support::to_chrome_trace(telemetry));
  EXPECT_EQ(doc.at("schema").as_string(), "hecmine.trace.v1");
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  EXPECT_DOUBLE_EQ(doc.at("dropped").as_number(), 0.0);
  EXPECT_EQ(doc.at("manifest").at("schema").as_string(),
            "hecmine.manifest.v1");
  // No spans -> the only events are process metadata.
  EXPECT_TRUE(complete_events(doc).empty());
  for (const Value& event : doc.at("traceEvents").as_array())
    EXPECT_EQ(event.at("ph").as_string(), "M");
}

TEST(TraceExport, NestedScopesExportWithParentAndDepth) {
  support::Telemetry telemetry;
  {
    const support::SolveTrace::Scope outer(&telemetry.trace, "leader.round");
    const support::SolveTrace::Scope inner(&telemetry.trace, "oracle.solve");
  }
  const Value doc = support::json::parse(support::to_chrome_trace(telemetry));
  const auto events = complete_events(doc);
  ASSERT_EQ(events.size(), 2u);
  // Spans are recorded (and exported) in start-time order: outer first.
  const Value& outer = *events[0];
  const Value& inner = *events[1];
  EXPECT_EQ(outer.at("name").as_string(), "leader.round");
  EXPECT_EQ(inner.at("name").as_string(), "oracle.solve");
  EXPECT_DOUBLE_EQ(outer.at("args").at("parent").as_number(), -1.0);
  EXPECT_DOUBLE_EQ(outer.at("args").at("depth").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(inner.at("args").at("parent").as_number(),
                   outer.at("args").at("id").as_number());
  EXPECT_DOUBLE_EQ(inner.at("args").at("depth").as_number(), 1.0);
  // The child interval is contained in the parent's (ts/dur are in
  // microseconds).
  EXPECT_GE(inner.at("ts").as_number(), outer.at("ts").as_number());
  EXPECT_LE(inner.at("ts").as_number() + inner.at("dur").as_number(),
            outer.at("ts").as_number() + outer.at("dur").as_number() + 1e-9);
  // Both ran on the constructing thread: one shared track, ordinal 0.
  EXPECT_DOUBLE_EQ(outer.at("tid").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(inner.at("tid").as_number(), 0.0);
}

TEST(TraceExport, WorkCounterTracksAreCumulativeStaircases) {
  // Spans that counted work export Perfetto "C" (counter) events: one
  // per (field, track) at each span close, carrying the cumulative
  // exclusive total so the track renders as a monotone staircase.
  support::Telemetry telemetry;
  {
    const support::TelemetryScope scope(&telemetry);
    const support::SolveTrace::Scope outer(&telemetry.trace, "leader.round");
    support::prof::current_block()->add(support::prof::WorkField::kSweeps, 2);
    {
      const support::SolveTrace::Scope inner(&telemetry.trace,
                                             "oracle.solve");
      support::prof::current_block()->add(support::prof::WorkField::kSweeps,
                                          5);
    }
  }
  const Value doc = support::json::parse(support::to_chrome_trace(telemetry));
  std::vector<const Value*> counters;
  for (const Value& event : doc.at("traceEvents").as_array()) {
    if (event.at("ph").as_string() == "C") counters.push_back(&event);
  }
  ASSERT_EQ(counters.size(), 2u);
  double previous_ts = -1.0;
  double previous_value = -1.0;
  for (const Value* event : counters) {
    EXPECT_EQ(event->at("name").as_string(), "work.sweeps (t0)");
    EXPECT_DOUBLE_EQ(event->at("pid").as_number(), 1.0);
    EXPECT_DOUBLE_EQ(event->at("tid").as_number(), 0.0);
    EXPECT_GE(event->at("ts").as_number(), previous_ts);
    EXPECT_GT(event->at("args").at("value").as_number(), previous_value);
    previous_ts = event->at("ts").as_number();
    previous_value = event->at("args").at("value").as_number();
  }
  // Close-time order: the inner span's 5 sweeps first, then the outer
  // span's close lifts the cumulative total to 7 (its own 2 on top).
  EXPECT_DOUBLE_EQ(counters[0]->at("args").at("value").as_number(), 5.0);
  EXPECT_DOUBLE_EQ(counters[1]->at("args").at("value").as_number(), 7.0);
  // The complete events still carry inclusive work in their args.
  const auto events = complete_events(doc);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(
      events[0]->at("args").at("work").at("sweeps").as_number(), 7.0);
  EXPECT_DOUBLE_EQ(
      events[1]->at("args").at("work").at("sweeps").as_number(), 5.0);
}

TEST(TraceExport, SnapshotStartTimesAreMonotonic) {
  support::Telemetry telemetry;
  for (int i = 0; i < 32; ++i) {
    const support::SolveTrace::Scope scope(&telemetry.trace, "phase");
  }
  const auto spans = telemetry.trace.snapshot();
  ASSERT_EQ(spans.size(), 32u);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].start_ms, spans[i - 1].start_ms);
    EXPECT_GE(spans[i].duration_ms, 0.0);
  }
}

TEST(TraceExport, PoolWorkersGetTheirOwnTracks) {
  support::Telemetry telemetry;
  support::ThreadPool pool(3);
  {
    // Install the sink on the issuing thread; parallel_for captures it and
    // records a pool.batch busy span on every executing thread.
    const support::TelemetryScope scope(&telemetry);
    pool.parallel_for(64, [&](std::size_t) {
      const support::SolveTrace::Scope span(&telemetry.trace, "work.item");
      // Keep each item busy long enough that the workers reliably wake up
      // and claim a share before the issuer drains the batch alone.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    });
  }
  // The issuer participates in the batch, so with 3 workers and 64 items
  // at least two distinct threads must have recorded spans.
  EXPECT_GE(telemetry.trace.thread_count(), 2);

  const Value doc = support::json::parse(support::to_chrome_trace(telemetry));
  std::set<int> metadata_tracks;
  std::set<int> event_tracks;
  bool saw_process_name = false;
  for (const Value& event : doc.at("traceEvents").as_array()) {
    if (event.at("ph").as_string() == "M") {
      if (event.at("name").as_string() == "thread_name")
        metadata_tracks.insert(static_cast<int>(event.at("tid").as_number()));
      if (event.at("name").as_string() == "process_name")
        saw_process_name = true;
    } else {
      event_tracks.insert(static_cast<int>(event.at("tid").as_number()));
    }
  }
  EXPECT_TRUE(saw_process_name);
  EXPECT_GE(event_tracks.size(), 2u);
  // Every track that carries events is named by a metadata event.
  for (const int track : event_tracks)
    EXPECT_TRUE(metadata_tracks.count(track) > 0) << "unnamed track " << track;
  // Root spans on worker threads: a pool.batch span is a root (parent -1)
  // on its own track.
  bool saw_worker_root = false;
  for (const Value* event : complete_events(doc)) {
    if (event->at("tid").as_number() > 0.0 &&
        event->at("args").at("parent").as_number() == -1.0)
      saw_worker_root = true;
  }
  EXPECT_TRUE(saw_worker_root);
}

TEST(TraceExport, CapacityOverflowIsCountedAsDropped) {
  support::Telemetry telemetry;
  support::SolveTrace small(2);
  const int a = small.begin("a");
  const int b = small.begin("b");
  const int c = small.begin("c");  // past capacity
  EXPECT_GE(a, 0);
  EXPECT_GE(b, 0);
  EXPECT_EQ(c, -1);
  small.end(c);  // no-op
  small.end(b);
  small.end(a);
  EXPECT_EQ(small.dropped(), 1u);
  EXPECT_EQ(small.snapshot().size(), 2u);
}

TEST(TraceExport, WriteChromeTraceRoundTripsThroughDisk) {
  support::Telemetry telemetry;
  telemetry.manifest = support::provenance::collect(2, 77);
  {
    const support::SolveTrace::Scope scope(&telemetry.trace, "leader.stage");
  }
  const std::string path = testing::TempDir() + "/hecmine_trace_rt.json";
  support::write_chrome_trace(telemetry, path);
  const Value doc = support::json::parse_file(path);
  EXPECT_EQ(doc.at("schema").as_string(), "hecmine.trace.v1");
  EXPECT_DOUBLE_EQ(doc.at("manifest").at("seed").as_number(), 77.0);
  EXPECT_DOUBLE_EQ(doc.at("manifest").at("threads").as_number(), 2.0);
  ASSERT_EQ(complete_events(doc).size(), 1u);
  EXPECT_EQ(complete_events(doc)[0]->at("name").as_string(), "leader.stage");
  std::remove(path.c_str());
}

}  // namespace
