// Tests for numerics/optimize and numerics/gradient.
#include "numerics/optimize.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "numerics/gradient.hpp"
#include "support/error.hpp"

namespace hecmine::num {
namespace {

TEST(GoldenSection, FindsQuadraticMaximum) {
  const auto f = [](double x) { return -(x - 1.25) * (x - 1.25) + 3.0; };
  const auto result = golden_section_maximize(f, -10.0, 10.0);
  EXPECT_NEAR(result.argmax, 1.25, 1e-6);
  EXPECT_NEAR(result.value, 3.0, 1e-12);
}

TEST(GoldenSection, FindsBoundaryMaximumOfMonotone) {
  const auto increasing = [](double x) { return x; };
  const auto lo_result = golden_section_maximize(increasing, 0.0, 5.0);
  EXPECT_NEAR(lo_result.argmax, 5.0, 1e-8);
  const auto decreasing = [](double x) { return -x; };
  const auto hi_result = golden_section_maximize(decreasing, 0.0, 5.0);
  EXPECT_NEAR(hi_result.argmax, 0.0, 1e-8);
}

TEST(GoldenSection, RejectsBadInterval) {
  EXPECT_THROW(
      (void)golden_section_maximize([](double x) { return x; }, 1.0, 1.0),
      support::PreconditionError);
}

TEST(GoldenSection, HandlesFlatFunction) {
  const auto result =
      golden_section_maximize([](double) { return 2.0; }, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(result.value, 2.0);
}

TEST(MaximizeScan, FindsGlobalAmongMultipleModes) {
  // Two humps; the taller one is off-center at x = 4.
  const auto f = [](double x) {
    return std::exp(-(x - 1.0) * (x - 1.0)) +
           1.5 * std::exp(-4.0 * (x - 4.0) * (x - 4.0));
  };
  const auto result = maximize_scan(f, -2.0, 8.0);
  EXPECT_NEAR(result.argmax, 4.0, 1e-3);
}

TEST(MaximizeScan, AgreesWithGoldenOnUnimodal) {
  const auto f = [](double x) { return -(x - 2.0) * (x - 2.0); };
  const auto scanned = maximize_scan(f, 0.0, 10.0);
  const auto golden = golden_section_maximize(f, 0.0, 10.0);
  EXPECT_NEAR(scanned.argmax, golden.argmax, 1e-6);
}

TEST(MaximizeScan, RespectsGridOption) {
  Maximize1DOptions options;
  options.grid_points = 2;  // minimum — still must not crash
  const auto result =
      maximize_scan([](double x) { return x; }, 0.0, 1.0, options);
  EXPECT_NEAR(result.argmax, 1.0, 1e-6);
}

TEST(CentralDerivative, MatchesAnalytic) {
  const auto f = [](double x) { return std::sin(x); };
  EXPECT_NEAR(central_derivative(f, 0.7), std::cos(0.7), 1e-8);
  EXPECT_THROW((void)central_derivative(f, 0.0, 0.0),
               support::PreconditionError);
}

TEST(CentralGradient, MatchesAnalyticIn3D) {
  const auto f = [](const std::vector<double>& x) {
    return x[0] * x[0] + 3.0 * x[1] + x[2] * x[1];
  };
  const auto grad = central_gradient(f, {1.0, 2.0, 3.0});
  EXPECT_NEAR(grad[0], 2.0, 1e-7);
  EXPECT_NEAR(grad[1], 6.0, 1e-7);
  EXPECT_NEAR(grad[2], 2.0, 1e-7);
}

TEST(CentralSecondDerivative, MatchesAnalytic) {
  const auto f = [](double x) { return x * x * x; };
  EXPECT_NEAR(central_second_derivative(f, 2.0), 12.0, 1e-4);
}

}  // namespace
}  // namespace hecmine::num
