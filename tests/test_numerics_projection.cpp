// Tests for numerics/projection: correctness of the Euclidean projections
// via feasibility, idempotence and the variational characterization
// (x - P(x)) . (y - P(x)) <= 0 for all feasible y.
#include "numerics/projection.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace hecmine::num {
namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

std::vector<double> minus(const std::vector<double>& a,
                          const std::vector<double>& b) {
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

TEST(ProjectBox, ClampsComponentwise) {
  const auto projected =
      project_box({-1.0, 0.5, 9.0}, {0.0, 0.0, 0.0}, {1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(projected[0], 0.0);
  EXPECT_DOUBLE_EQ(projected[1], 0.5);
  EXPECT_DOUBLE_EQ(projected[2], 1.0);
}

TEST(ProjectBox, ValidatesInput) {
  EXPECT_THROW((void)project_box({1.0}, {0.0, 0.0}, {1.0, 1.0}),
               support::PreconditionError);
  EXPECT_THROW((void)project_box({1.0}, {2.0}, {1.0}),
               support::PreconditionError);
}

TEST(ProjectBudgetSet, InteriorPointIsFixed) {
  const std::vector<double> point{1.0, 1.0};
  const auto projected = project_budget_set(point, {1.0, 1.0}, 10.0);
  EXPECT_DOUBLE_EQ(projected[0], 1.0);
  EXPECT_DOUBLE_EQ(projected[1], 1.0);
}

TEST(ProjectBudgetSet, NegativeCoordinatesClampToZero) {
  const auto projected = project_budget_set({-2.0, 3.0}, {1.0, 1.0}, 10.0);
  EXPECT_DOUBLE_EQ(projected[0], 0.0);
  EXPECT_DOUBLE_EQ(projected[1], 3.0);
}

TEST(ProjectBudgetSet, BindingBudgetLandsOnBudgetLine) {
  const std::vector<double> prices{2.0, 1.0};
  const auto projected = project_budget_set({10.0, 10.0}, prices, 8.0);
  EXPECT_NEAR(dot(projected, prices), 8.0, 1e-9);
  EXPECT_GE(projected[0], 0.0);
  EXPECT_GE(projected[1], 0.0);
}

TEST(ProjectBudgetSet, ZeroBudgetProjectsToOrigin) {
  const auto projected = project_budget_set({5.0, 5.0}, {1.0, 2.0}, 0.0);
  EXPECT_NEAR(projected[0], 0.0, 1e-10);
  EXPECT_NEAR(projected[1], 0.0, 1e-10);
}

TEST(ProjectBudgetSet, SatisfiesVariationalInequalityOnRandomInstances) {
  support::Rng rng{21};
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t dim = 2 + rng.uniform_index(3);
    std::vector<double> prices(dim), point(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      prices[i] = rng.uniform(0.2, 3.0);
      point[i] = rng.uniform(-5.0, 5.0);
    }
    const double budget = rng.uniform(0.1, 4.0);
    const auto projected = project_budget_set(point, prices, budget);
    // Feasibility.
    EXPECT_LE(dot(projected, prices), budget + 1e-8);
    for (double x : projected) EXPECT_GE(x, 0.0);
    // Idempotence.
    const auto twice = project_budget_set(projected, prices, budget);
    for (std::size_t i = 0; i < dim; ++i)
      EXPECT_NEAR(twice[i], projected[i], 1e-8);
    // Variational characterization against random feasible points.
    for (int probe = 0; probe < 10; ++probe) {
      std::vector<double> y(dim);
      for (std::size_t i = 0; i < dim; ++i) y[i] = rng.uniform(0.0, 2.0);
      const double spend = dot(y, prices);
      if (spend > budget)
        for (double& v : y) v *= budget / spend;
      EXPECT_LE(dot(minus(point, projected), minus(y, projected)), 1e-6);
    }
  }
}

TEST(ProjectSharedCap, SlackCapEqualsBlockwiseProjection) {
  const std::vector<BudgetBlock> blocks{{{1.0, 1.0}, 10.0},
                                        {{1.0, 1.0}, 10.0}};
  const std::vector<double> weights{1.0, 0.0, 1.0, 0.0};
  const std::vector<double> point{1.0, 2.0, 1.5, 0.5};
  const auto projected = project_shared_cap(point, blocks, weights, 100.0);
  for (std::size_t i = 0; i < point.size(); ++i)
    EXPECT_NEAR(projected[i], point[i], 1e-10);
}

TEST(ProjectSharedCap, EnforcesSharedCapWithComplementarity) {
  const std::vector<BudgetBlock> blocks{{{1.0, 1.0}, 100.0},
                                        {{1.0, 1.0}, 100.0}};
  const std::vector<double> weights{1.0, 0.0, 1.0, 0.0};
  const std::vector<double> point{5.0, 1.0, 7.0, 2.0};  // shared usage 12
  const auto projected = project_shared_cap(point, blocks, weights, 6.0);
  const double usage = projected[0] + projected[2];
  EXPECT_NEAR(usage, 6.0, 1e-6);
  // Cloud coordinates are unaffected (their weight is zero).
  EXPECT_NEAR(projected[1], 1.0, 1e-9);
  EXPECT_NEAR(projected[3], 2.0, 1e-9);
  // Symmetric shrink: both edge coords reduced by the same multiplier.
  EXPECT_NEAR(point[0] - projected[0], point[2] - projected[2], 1e-6);
}

TEST(ProjectSharedCap, RespectsPerBlockBudgets) {
  const std::vector<BudgetBlock> blocks{{{1.0, 1.0}, 3.0},
                                        {{1.0, 1.0}, 3.0}};
  const std::vector<double> weights{1.0, 0.0, 1.0, 0.0};
  const auto projected =
      project_shared_cap({5.0, 5.0, 5.0, 5.0}, blocks, weights, 4.0);
  EXPECT_LE(projected[0] + projected[1], 3.0 + 1e-8);
  EXPECT_LE(projected[2] + projected[3], 3.0 + 1e-8);
  EXPECT_LE(projected[0] + projected[2], 4.0 + 1e-6);
}

TEST(ProjectSharedCap, ValidatesShapes) {
  const std::vector<BudgetBlock> blocks{{{1.0, 1.0}, 1.0}};
  EXPECT_THROW((void)project_shared_cap({1.0}, blocks, {1.0, 0.0}, 1.0),
               support::PreconditionError);
  EXPECT_THROW(
      (void)project_shared_cap({1.0, 1.0}, blocks, {1.0}, 1.0),
      support::PreconditionError);
}

}  // namespace
}  // namespace hecmine::num
