// Tests for net/campaign_monitor: streaming campaign statistics, CLT
// drift detection against the reference equilibrium, watchdog escalation,
// and the determinism contract of the campaign.* gauges.
#include "net/campaign_monitor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "net/campaign.hpp"
#include "support/error.hpp"
#include "support/health.hpp"
#include "support/telemetry.hpp"

namespace hecmine::net {
namespace {

namespace health = support::health;

CampaignConfig base_config() {
  CampaignConfig config;
  config.params.reward = 100.0;
  config.params.fork_rate = 0.2;
  config.params.edge_success = 0.9;
  config.params.edge_capacity = 10.0;
  config.policy = {core::EdgeMode::kConnected, 0.9, 10.0};
  config.prices = {2.0, 1.0};
  config.difficulty.target_interval = 1.0;
  config.difficulty.window = 32;
  config.blocks = 4000;
  return config;
}

CampaignMonitorOptions deterministic_options() {
  CampaignMonitorOptions options;
  options.wall_clock = false;  // campaign.sim_wall_ratio is wall-clock
  return options;
}

/// All counter/gauge samples of a sink, keyed by name (sorted), for
/// bitwise comparison across runs.
std::map<std::string, double> metric_values(const support::Telemetry& sink) {
  std::map<std::string, double> values;
  const support::MetricsSnapshot snapshot = sink.metrics.snapshot();
  for (const auto& counter : snapshot.counters)
    values["counter." + counter.name] = static_cast<double>(counter.value);
  for (const auto& gauge : snapshot.gauges)
    values["gauge." + gauge.name] = gauge.value;
  return values;
}

TEST(CampaignMonitor, ConvergedEquilibriumCampaignStaysWithinBounds) {
  CampaignConfig config = base_config();
  support::Telemetry telemetry;
  CampaignMonitor monitor(telemetry, deterministic_options());
  config.monitor = &monitor;
  const std::vector<double> budgets(5, 12.0);
  const auto outcome = run_campaign_at_equilibrium(config, budgets, 71);
  ASSERT_TRUE(monitor.has_reference());
  EXPECT_EQ(monitor.incidents(), 0u);
  EXPECT_TRUE(monitor.events().empty());
  // Healthy campaign: both drift families stay under the 4-sigma bound.
  EXPECT_LT(monitor.max_sampler_z(), monitor.options().drift_z);
  EXPECT_LT(monitor.max_drift_z(), monitor.options().drift_z);
  EXPECT_LT(std::abs(monitor.fork_z()), monitor.options().drift_z);

  // Summary consistency with the campaign result.
  const chain::BlockLogSummary summary = monitor.summary();
  EXPECT_TRUE(summary.has_reference);
  EXPECT_EQ(summary.rounds, static_cast<std::uint64_t>(config.blocks));
  EXPECT_EQ(summary.blocks, static_cast<std::uint64_t>(config.blocks));
  ASSERT_EQ(summary.miners.size(), outcome.result.miners.size());
  std::uint64_t wins = 0;
  for (std::size_t i = 0; i < summary.miners.size(); ++i) {
    EXPECT_EQ(summary.miners[i].wins, outcome.result.miners[i].wins);
    EXPECT_EQ(summary.miners[i].rounds,
              static_cast<std::uint64_t>(config.blocks));
    wins += summary.miners[i].wins;
  }
  EXPECT_EQ(wins, summary.blocks);

  // Gauges and the sim-time timeline were populated.
  EXPECT_DOUBLE_EQ(telemetry.metrics.gauge("campaign.rounds").value(),
                   static_cast<double>(config.blocks));
  EXPECT_GT(telemetry.metrics.gauge("campaign.hhi").value(), 0.0);
  EXPECT_GT(telemetry.metrics.gauge("campaign.nakamoto").value(), 0.0);
  EXPECT_FALSE(telemetry.timeline.spans().empty());
  EXPECT_FALSE(telemetry.timeline.counters().empty());
  // wall_clock=false keeps the one nondeterministic gauge unset.
  EXPECT_DOUBLE_EQ(telemetry.metrics.gauge("campaign.sim_wall_ratio").value(),
                   0.0);
}

TEST(CampaignMonitor, MispricedReferenceRaisesWinRateIncident) {
  CampaignConfig config = base_config();
  support::Telemetry telemetry;
  CampaignMonitor monitor(telemetry, deterministic_options());
  config.monitor = &monitor;
  // The campaign plays these fixed strategies...
  const std::vector<core::MinerRequest> played{
      {2.0, 1.0}, {1.0, 3.0}, {0.5, 2.0}};
  // ...while the auditor expects miner 0 at double the units — a
  // mis-priced reference the realized win rates cannot match.
  std::vector<core::MinerRequest> reference = played;
  reference[0] = {4.0, 2.0};
  monitor.set_reference(reference, core::EdgeMode::kConnected,
                        config.params.fork_rate, config.params.edge_success);
  (void)run_campaign(config, played, 72);
  EXPECT_GE(monitor.incidents(), 1u);
  EXPECT_GT(monitor.max_drift_z(), monitor.options().drift_z);
  const auto events = monitor.events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().solver, "campaign.win_rate");
  EXPECT_EQ(events.front().classification, health::LoopState::kDiverging);
  // The pending hecmine.health.v1 lines carry the incident for the
  // flight-recorder drain.
  const auto lines = monitor.drain_event_lines();
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines.front().find("campaign.win_rate"), std::string::npos);
  EXPECT_NE(lines.front().find("hecmine.health.v1"), std::string::npos);
  // Drained once: the queue is empty afterwards.
  EXPECT_TRUE(monitor.drain_event_lines().empty());
  EXPECT_DOUBLE_EQ(telemetry.metrics.gauge("campaign.incidents").value(),
                   static_cast<double>(monitor.incidents()));
  // The sampler self-consistency check stays healthy: run_race matches
  // its own granted allocations even when the reference is wrong.
  EXPECT_LT(monitor.max_sampler_z(), monitor.options().drift_z);
}

TEST(CampaignMonitor, AbortPolicyThrowsSolverHealthError) {
  CampaignConfig config = base_config();
  support::Telemetry telemetry;
  CampaignMonitorOptions options = deterministic_options();
  options.action = health::WatchdogAction::kAbort;
  CampaignMonitor monitor(telemetry, options);
  config.monitor = &monitor;
  const std::vector<core::MinerRequest> played{
      {2.0, 1.0}, {1.0, 3.0}, {0.5, 2.0}};
  std::vector<core::MinerRequest> reference = played;
  reference[0] = {4.0, 2.0};
  monitor.set_reference(reference, core::EdgeMode::kConnected,
                        config.params.fork_rate, config.params.edge_success);
  EXPECT_THROW((void)run_campaign(config, played, 72),
               health::SolverHealthError);
  EXPECT_GE(monitor.incidents(), 1u);
}

TEST(CampaignMonitor, ObservePolicySuppressesEscalationButKeepsEvidence) {
  CampaignConfig config = base_config();
  support::Telemetry telemetry;
  CampaignMonitorOptions options = deterministic_options();
  options.action = health::WatchdogAction::kObserve;
  CampaignMonitor monitor(telemetry, options);
  config.monitor = &monitor;
  const std::vector<core::MinerRequest> played{
      {2.0, 1.0}, {1.0, 3.0}, {0.5, 2.0}};
  std::vector<core::MinerRequest> reference = played;
  reference[0] = {4.0, 2.0};
  monitor.set_reference(reference, core::EdgeMode::kConnected,
                        config.params.fork_rate, config.params.edge_success);
  EXPECT_NO_THROW((void)run_campaign(config, played, 72));
  EXPECT_GE(monitor.incidents(), 1u);
  EXPECT_FALSE(monitor.events().empty());
}

TEST(CampaignMonitor, GaugesAreBitwiseThreadCountInvariant) {
  // Every campaign.* gauge except the (disabled) sim_wall_ratio is a pure
  // function of the record stream, so solver thread count must not change
  // a single bit.
  std::map<std::string, double> per_thread_values[2];
  const int thread_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    CampaignConfig config = base_config();
    support::Telemetry telemetry;
    CampaignMonitor monitor(telemetry, deterministic_options());
    config.monitor = &monitor;
    config.telemetry = &telemetry;
    core::SolveContext context;
    context.threads = thread_counts[i];
    const std::vector<double> budgets(5, 12.0);
    (void)run_campaign_at_equilibrium(config, budgets, 73, context);
    per_thread_values[i] = metric_values(telemetry);
  }
  ASSERT_EQ(per_thread_values[0].size(), per_thread_values[1].size());
  for (const auto& [name, value] : per_thread_values[0]) {
    const auto it = per_thread_values[1].find(name);
    ASSERT_NE(it, per_thread_values[1].end()) << name;
    // Bitwise: EXPECT_EQ on doubles, not EXPECT_NEAR.
    EXPECT_EQ(value, it->second) << name;
  }
}

TEST(CampaignMonitor, ObserveQueueFeedsQueueGauges) {
  support::Telemetry telemetry;
  CampaignMonitor monitor(telemetry, deterministic_options());
  monitor.observe_queue(17, 4242);
  EXPECT_DOUBLE_EQ(telemetry.metrics.gauge("campaign.queue_depth").value(),
                   17.0);
  EXPECT_DOUBLE_EQ(telemetry.metrics.gauge("campaign.queue_events").value(),
                   4242.0);
  EXPECT_FALSE(telemetry.timeline.counters().empty());
}

TEST(CampaignMonitor, ReferenceMustBeSetBeforeObserving) {
  support::Telemetry telemetry;
  CampaignMonitor monitor(telemetry, deterministic_options());
  chain::BlockRecord record;
  record.round = 0;
  record.sim_time = 1.0;
  monitor.observe_block(record, {}, {});
  EXPECT_THROW(monitor.set_reference({{1.0, 1.0}}, core::EdgeMode::kConnected,
                                     0.2, 0.9),
               support::PreconditionError);
}

}  // namespace
}  // namespace hecmine::net
