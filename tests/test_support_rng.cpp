// Tests for support/rng: determinism, distribution moments, edge cases.
#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/error.hpp"
#include "support/stats.hpp"

namespace hecmine::support {
namespace {

TEST(Xoshiro, IsDeterministicForEqualSeeds) {
  Xoshiro256StarStar a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DiffersAcrossSeeds) {
  Xoshiro256StarStar a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro, JumpChangesStream) {
  Xoshiro256StarStar a{7}, b{7};
  b.jump();
  EXPECT_NE(a(), b());
}

TEST(SplitMix, ProducesKnownGoodDispersion) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_NE(first, second);
  EXPECT_NE(first, 0u);
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng{5};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng{6};
  Accumulator acc;
  for (int i = 0; i < 200000; ++i) acc.add(rng.uniform());
  EXPECT_NEAR(acc.mean(), 0.5, 0.005);
  EXPECT_NEAR(acc.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 2.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 2.0);
  }
  EXPECT_THROW((void)rng.uniform(2.0, 2.0), PreconditionError);
}

TEST(Rng, UniformIndexCoversSupportWithoutBias) {
  Rng rng{8};
  std::vector<int> counts(5, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_index(5)];
  for (int c : counts) EXPECT_NEAR(c, draws / 5, draws / 50);
  EXPECT_THROW((void)rng.uniform_index(0), PreconditionError);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng{9};
  int hits = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / draws, 0.3, 0.01);
  EXPECT_THROW((void)rng.bernoulli(1.5), PreconditionError);
}

TEST(Rng, BernoulliDegenerateEnds) {
  Rng rng{10};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng{11};
  Accumulator acc;
  for (int i = 0; i < 200000; ++i) acc.add(rng.exponential(4.0));
  EXPECT_NEAR(acc.mean(), 0.25, 0.005);
  EXPECT_THROW((void)rng.exponential(0.0), PreconditionError);
}

TEST(Rng, NormalMomentsAreStandard) {
  Rng rng{12};
  Accumulator acc;
  for (int i = 0; i < 200000; ++i) acc.add(rng.normal());
  EXPECT_NEAR(acc.mean(), 0.0, 0.01);
  EXPECT_NEAR(acc.variance(), 1.0, 0.02);
}

TEST(Rng, ScaledNormalMoments) {
  Rng rng{13};
  Accumulator acc;
  for (int i = 0; i < 100000; ++i) acc.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.05);
  EXPECT_THROW((void)rng.normal(0.0, -1.0), PreconditionError);
}

TEST(Rng, TruncatedNormalStaysInRange) {
  Rng rng{14};
  for (int i = 0; i < 20000; ++i) {
    const double draw = rng.truncated_normal(10.0, 4.0, 1.0, 20.0);
    EXPECT_GE(draw, 1.0);
    EXPECT_LE(draw, 20.0);
  }
}

TEST(Rng, TruncatedNormalDegenerateStddev) {
  Rng rng{15};
  EXPECT_DOUBLE_EQ(rng.truncated_normal(5.0, 0.0, 0.0, 10.0), 5.0);
  EXPECT_THROW((void)rng.truncated_normal(50.0, 0.0, 0.0, 10.0),
               PreconditionError);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng{16};
  const std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.categorical(weights)];
  EXPECT_NEAR(counts[0], draws * 0.1, draws * 0.01);
  EXPECT_NEAR(counts[1], draws * 0.3, draws * 0.015);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3], draws * 0.6, draws * 0.015);
}

TEST(Rng, CategoricalRejectsBadWeights) {
  Rng rng{17};
  EXPECT_THROW((void)rng.categorical({}), PreconditionError);
  EXPECT_THROW((void)rng.categorical({0.0, 0.0}), PreconditionError);
  EXPECT_THROW((void)rng.categorical({1.0, -1.0}), PreconditionError);
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng parent{18};
  Rng child_a = parent.split(0);
  Rng child_b = parent.split(1);
  Accumulator diff;
  for (int i = 0; i < 10000; ++i)
    diff.add(child_a.uniform() - child_b.uniform());
  // Independent uniform differences have mean 0 and variance 1/6.
  EXPECT_NEAR(diff.mean(), 0.0, 0.02);
  EXPECT_NEAR(diff.variance(), 1.0 / 6.0, 0.02);
}

}  // namespace
}  // namespace hecmine::support
