// Tests for support/parallel: pool correctness, exception propagation,
// nested dispatch, determinism of parallel_map, and thread-count
// resolution (HECMINE_THREADS).
#include "support/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace hecmine::support {
namespace {

/// Sets HECMINE_THREADS for one scope and restores the prior value.
class ScopedEnv {
 public:
  explicit ScopedEnv(const char* value) {
    const char* prior = std::getenv("HECMINE_THREADS");
    if (prior != nullptr) saved_ = prior;
    had_prior_ = prior != nullptr;
    if (value == nullptr)
      ::unsetenv("HECMINE_THREADS");
    else
      ::setenv("HECMINE_THREADS", value, 1);
  }
  ~ScopedEnv() {
    if (had_prior_)
      ::setenv("HECMINE_THREADS", saved_.c_str(), 1);
    else
      ::unsetenv("HECMINE_THREADS");
  }

 private:
  std::string saved_;
  bool had_prior_ = false;
};

TEST(ResolveThreadCount, PositiveRequestWins) {
  ScopedEnv env("7");
  EXPECT_EQ(resolve_thread_count(3), 3);
  EXPECT_EQ(resolve_thread_count(1), 1);
}

TEST(ResolveThreadCount, ZeroDefersToEnvOverride) {
  ScopedEnv env("5");
  EXPECT_EQ(resolve_thread_count(0), 5);
}

TEST(ResolveThreadCount, WithoutEnvUsesHardwareAndIsAtLeastOne) {
  ScopedEnv env(nullptr);
  EXPECT_GE(resolve_thread_count(0), 1);
}

TEST(ResolveThreadCount, MalformedEnvThrows) {
  ScopedEnv env("not-a-number");
  EXPECT_THROW((void)resolve_thread_count(0), PreconditionError);
}

TEST(ResolveThreadCount, NegativeEnvThrows) {
  ScopedEnv env("-2");
  EXPECT_THROW((void)resolve_thread_count(0), PreconditionError);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> counts(257);
  pool.parallel_for(counts.size(),
                    [&](std::size_t i) { counts[i].fetch_add(1); });
  for (const auto& count : counts) EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0);
  std::vector<int> hits(16, 0);  // no atomics needed: everything is inline
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 16);
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPool, SubmitReturnsAWorkingFuture) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  auto future = pool.submit([&] { ran.fetch_add(1); });
  future.get();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, SubmitPropagatesExceptionsThroughTheFuture) {
  ThreadPool pool(1);
  auto future = pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForRethrowsTheBodyException) {
  ThreadPool pool(3);
  const auto run = [&] {
    pool.parallel_for(64, [&](std::size_t i) {
      if (i == 17) throw std::invalid_argument("poisoned item");
    });
  };
  EXPECT_THROW(run(), std::invalid_argument);
  // The pool stays usable after a failed batch.
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 8);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(ThreadPool, NestedSubmitFromATaskCompletes) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  auto outer = pool.submit([&] {
    auto inner = pool.submit([&] { ran.fetch_add(1); });
    inner.get();
    ran.fetch_add(1);
  });
  outer.get();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ParallelMap, PreservesIndexOrderForEveryThreadCount) {
  const auto fn = [](std::size_t i) {
    return static_cast<double>(i) * 1.5 + 1.0;
  };
  const auto serial = parallel_map(100, fn, 1);
  for (int threads : {2, 3, 8}) {
    const auto parallel = parallel_map(100, fn, threads);
    EXPECT_EQ(parallel, serial) << "threads=" << threads;
  }
}

TEST(ParallelMap, SubstreamDrawsAreScheduleIndependent) {
  const auto run = [&](int threads) {
    Rng parent(2024);
    auto streams = parent.substreams(16);
    return parallel_map(
        streams.size(), [&](std::size_t i) { return streams[i].uniform(); },
        threads);
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(RngSubstreams, MatchRepeatedSplit) {
  Rng a(99), b(99);
  auto streams = a.substreams(5);
  ASSERT_EQ(streams.size(), 5u);
  for (std::size_t i = 0; i < streams.size(); ++i) {
    Rng expected = b.split(i);
    EXPECT_EQ(streams[i].uniform(), expected.uniform()) << "stream " << i;
  }
}

}  // namespace
}  // namespace hecmine::support
