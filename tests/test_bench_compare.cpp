// Perf-regression ledger gate tests: self-comparison passes, synthetic
// slowdowns fail, noise-floor and label mismatches are skipped (not
// failed), config mismatches refuse the comparison, and equilibrium
// quality drift fails even when the timings improved.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "compare.hpp"
#include "support/json.hpp"

namespace {

using namespace hecmine;
using support::json::Value;

std::string ledger(double serial_ms, double parallel_ms, double gap,
                   double violation, int grid = 8) {
  std::ostringstream out;
  out << R"({"schema": "hecmine.bench.v1", "bench": "leader_stage",)"
      << R"( "config": {"miners": 4, "grid": )" << grid << "},"
      << R"( "runs": [)"
      << R"({"label": "homogeneous/serial", "wall_ms": )" << serial_ms * 0.9
      << R"(, "wall_ms_p50": )" << serial_ms << "},"
      << R"({"label": "homogeneous/parallel", "wall_ms": )" << parallel_ms * 0.9
      << R"(, "wall_ms_p50": )" << parallel_ms << "}],"
      << R"( "audit": {"best_response_gap": )" << gap
      << R"(, "capacity_violation": )" << violation << "}}";
  return out.str();
}

Value parse(const std::string& text) { return support::json::parse(text); }

TEST(BenchCompare, SelfComparisonIsClean) {
  const Value doc = parse(ledger(100.0, 50.0, 0.0, 0.0));
  const auto result = bench::compare_bench_json(doc, doc);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.error.empty());
  for (const auto& delta : result.deltas) {
    EXPECT_FALSE(delta.regressed) << delta.label;
  }
}

TEST(BenchCompare, FlagsSlowdownBeyondTolerance) {
  const Value baseline = parse(ledger(100.0, 50.0, 0.0, 0.0));
  const Value slowed = parse(ledger(130.0, 50.0, 0.0, 0.0));  // +30%
  const auto result = bench::compare_bench_json(baseline, slowed);
  EXPECT_FALSE(result.ok);
  bool found = false;
  for (const auto& delta : result.deltas) {
    if (delta.label == "homogeneous/serial") {
      EXPECT_TRUE(delta.regressed);
      EXPECT_NEAR(delta.ratio, 1.3, 1e-12);
      found = true;
    } else {
      EXPECT_FALSE(delta.regressed) << delta.label;
    }
  }
  EXPECT_TRUE(found);
}

TEST(BenchCompare, ToleranceIsConfigurable) {
  const Value baseline = parse(ledger(100.0, 50.0, 0.0, 0.0));
  const Value slowed = parse(ledger(130.0, 50.0, 0.0, 0.0));
  bench::CompareOptions generous;
  generous.max_regression = 0.5;
  EXPECT_TRUE(bench::compare_bench_json(baseline, slowed, generous).ok);
}

TEST(BenchCompare, SpeedupIsNotARegression) {
  const Value baseline = parse(ledger(100.0, 50.0, 0.0, 0.0));
  const Value faster = parse(ledger(40.0, 20.0, 0.0, 0.0));
  EXPECT_TRUE(bench::compare_bench_json(baseline, faster).ok);
}

TEST(BenchCompare, NoiseFloorSkipsSubMillisecondRuns) {
  // 0.2ms -> 0.9ms is a 4.5x "slowdown" but both sit under the 1ms floor.
  const Value baseline = parse(ledger(0.2, 0.2, 0.0, 0.0));
  const Value current = parse(ledger(0.9, 0.9, 0.0, 0.0));
  const auto result = bench::compare_bench_json(baseline, current);
  EXPECT_TRUE(result.ok);
  for (const auto& delta : result.deltas) {
    if (delta.label.rfind("audit.", 0) == 0) continue;
    EXPECT_TRUE(delta.skipped) << delta.label;
  }
}

TEST(BenchCompare, ConfigMismatchRefusesToCompare) {
  const Value baseline = parse(ledger(100.0, 50.0, 0.0, 0.0, 8));
  const Value current = parse(ledger(100.0, 50.0, 0.0, 0.0, 40));
  const auto result = bench::compare_bench_json(baseline, current);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("config mismatch"), std::string::npos)
      << result.error;

  bench::CompareOptions no_check;
  no_check.check_config = false;
  EXPECT_TRUE(bench::compare_bench_json(baseline, current, no_check).ok);
}

TEST(BenchCompare, AuditDriftFailsEvenWhenFaster) {
  const Value baseline = parse(ledger(100.0, 50.0, 1e-9, 0.0));
  const Value degraded = parse(ledger(50.0, 25.0, 1e-3, 0.0));
  const auto result = bench::compare_bench_json(baseline, degraded);
  EXPECT_FALSE(result.ok);
  bool flagged = false;
  for (const auto& delta : result.deltas)
    if (delta.label == "audit.best_response_gap" && delta.regressed)
      flagged = true;
  EXPECT_TRUE(flagged);

  bench::CompareOptions no_audit;
  no_audit.check_audit = false;
  EXPECT_TRUE(bench::compare_bench_json(baseline, degraded, no_audit).ok);
}

TEST(BenchCompare, MissingRunInCurrentIsSkippedNotFailed) {
  const Value baseline = parse(ledger(100.0, 50.0, 0.0, 0.0));
  const Value current = parse(
      R"({"schema": "hecmine.bench.v1", "config": {"miners": 4, "grid": 8},)"
      R"( "runs": [{"label": "homogeneous/serial", "wall_ms": 100.0,)"
      R"( "wall_ms_p50": 100.0}]})");
  const auto result = bench::compare_bench_json(baseline, current);
  EXPECT_TRUE(result.ok);
  bool skipped = false;
  for (const auto& delta : result.deltas)
    if (delta.label == "homogeneous/parallel" && delta.skipped) skipped = true;
  EXPECT_TRUE(skipped);
}

TEST(BenchCompare, PreSchemaFilesFallBackToWallMs) {
  // No "schema", no percentiles, no config: the gate still compares the
  // legacy wall_ms numbers so old committed ledgers stay usable.
  const Value baseline = parse(
      R"({"runs": [{"label": "a", "wall_ms": 100.0}]})");
  const Value slowed = parse(
      R"({"runs": [{"label": "a", "wall_ms": 200.0}]})");
  EXPECT_TRUE(bench::compare_bench_json(baseline, baseline).ok);
  const auto result = bench::compare_bench_json(baseline, slowed);
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.deltas.empty());
  EXPECT_DOUBLE_EQ(result.deltas[0].baseline, 100.0);
}

TEST(BenchCompare, StructuralErrorsAreReported) {
  const Value ok = parse(ledger(100.0, 50.0, 0.0, 0.0));
  const Value not_ledger = parse(R"({"hello": 1})");
  EXPECT_FALSE(bench::compare_bench_json(ok, not_ledger).error.empty());
  const Value bad_schema = parse(
      R"({"schema": "hecmine.bench.v999", "runs": []})");
  EXPECT_FALSE(bench::compare_bench_json(bad_schema, bad_schema).error
                   .empty());
  // Unreadable file surfaces through .error, not an exception.
  const auto missing = bench::compare_bench_files(
      "/nonexistent/baseline.json", "/nonexistent/current.json");
  EXPECT_FALSE(missing.error.empty());
}

/// Wraps a ledger with a hecmine.manifest.v1 block carrying the given
/// build-identity fields.
std::string with_manifest(const std::string& ledger_text,
                          const std::string& sha,
                          const std::string& build_type) {
  std::string text = ledger_text;
  const std::string manifest =
      R"("manifest": {"schema": "hecmine.manifest.v1", "git_sha": ")" + sha +
      R"(", "build_type": ")" + build_type +
      R"(", "sanitizer": "", "compiler": "gcc"}, )";
  text.insert(1, manifest);
  return text;
}

TEST(BenchCompare, ManifestMismatchWarnsWithoutFailing) {
  const std::string base = ledger(100.0, 50.0, 0.0, 0.0);
  const Value baseline = parse(with_manifest(base, "aaa111", "Release"));
  const Value current = parse(with_manifest(base, "bbb222", "Debug"));
  const auto result = bench::compare_bench_json(baseline, current);
  EXPECT_TRUE(result.ok);  // warnings never fail the gate
  ASSERT_EQ(result.warnings.size(), 2u);
  EXPECT_NE(result.warnings[0].find("git_sha"), std::string::npos);
  EXPECT_NE(result.warnings[1].find("build_type"), std::string::npos);
  std::ostringstream os;
  bench::print_compare(os, result);
  EXPECT_NE(os.str().find("warn manifest.git_sha"), std::string::npos)
      << os.str();
}

TEST(BenchCompare, IsaMismatchWarnsWithoutFailing) {
  // A -march=native (HECMINE_NATIVE) ledger compared against a generic-ISA
  // baseline is a vectorization mismatch: warn, never gate.
  const std::string base = ledger(100.0, 50.0, 0.0, 0.0);
  const auto with_isa = [&](const std::string& isa) {
    std::string text = base;
    const std::string manifest =
        R"("manifest": {"schema": "hecmine.manifest.v1", "isa": ")" + isa +
        R"("}, )";
    text.insert(1, manifest);
    return text;
  };
  const Value baseline = parse(with_isa("generic"));
  const Value current = parse(with_isa("-march=native"));
  const auto result = bench::compare_bench_json(baseline, current);
  EXPECT_TRUE(result.ok);
  ASSERT_EQ(result.warnings.size(), 1u);
  EXPECT_NE(result.warnings[0].find("isa"), std::string::npos);
  EXPECT_NE(result.warnings[0].find("-march=native"), std::string::npos);
}

TEST(BenchCompare, MatchingOrAbsentManifestsProduceNoWarnings) {
  const std::string base = ledger(100.0, 50.0, 0.0, 0.0);
  const Value bare = parse(base);  // pre-manifest ledger
  EXPECT_TRUE(bench::compare_bench_json(bare, bare).warnings.empty());
  const Value stamped = parse(with_manifest(base, "aaa111", "Release"));
  EXPECT_TRUE(
      bench::compare_bench_json(stamped, stamped).warnings.empty());
  // One side stamped, the other pre-manifest: nothing to compare.
  EXPECT_TRUE(bench::compare_bench_json(bare, stamped).warnings.empty());
}

/// Ledger with a single run whose convergence flag is configurable.
std::string ledger_with_converged(bool converged, double wall_ms = 100.0) {
  std::ostringstream out;
  out << R"({"schema": "hecmine.bench.v1", "config": {"grid": 8},)"
      << R"( "runs": [{"label": "heterogeneous/serial", "wall_ms": )"
      << wall_ms << R"(, "wall_ms_p50": )" << wall_ms
      << R"(, "converged": )" << (converged ? "true" : "false") << "}]}";
  return out.str();
}

TEST(BenchCompare, ConvergedRegressionWarnsWithoutFailing) {
  const Value baseline = parse(ledger_with_converged(true));
  const Value regressed = parse(ledger_with_converged(false));
  const auto result = bench::compare_bench_json(baseline, regressed);
  EXPECT_TRUE(result.ok);  // timing unchanged; the flag alone never gates
  ASSERT_EQ(result.warnings.size(), 1u);
  EXPECT_NE(result.warnings[0].find("heterogeneous/serial"),
            std::string::npos);
  EXPECT_NE(result.warnings[0].find("non-converged"), std::string::npos);
  std::ostringstream os;
  bench::print_compare(os, result);
  EXPECT_NE(os.str().find("warn heterogeneous/serial"), std::string::npos)
      << os.str();
}

TEST(BenchCompare, ConvergedStableOrRecoveredProducesNoWarning) {
  const Value converged = parse(ledger_with_converged(true));
  const Value cycling = parse(ledger_with_converged(false));
  // Stable (true->true, false->false) and recovery (false->true) are quiet.
  EXPECT_TRUE(bench::compare_bench_json(converged, converged).warnings.empty());
  EXPECT_TRUE(bench::compare_bench_json(cycling, cycling).warnings.empty());
  EXPECT_TRUE(bench::compare_bench_json(cycling, converged).warnings.empty());
  // Pre-flag ledgers (no "converged" field) are also quiet.
  const Value bare = parse(
      R"({"runs": [{"label": "heterogeneous/serial", "wall_ms": 100.0}]})");
  EXPECT_TRUE(bench::compare_bench_json(bare, converged).warnings.empty());
  EXPECT_TRUE(bench::compare_bench_json(converged, bare).warnings.empty());
}

TEST(BenchCompare, PrintReportsVerdictAndDeltas) {
  const Value baseline = parse(ledger(100.0, 50.0, 0.0, 0.0));
  const Value slowed = parse(ledger(130.0, 50.0, 0.0, 0.0));
  std::ostringstream os;
  bench::print_compare(os, bench::compare_bench_json(baseline, slowed));
  const std::string text = os.str();
  EXPECT_NE(text.find("REGRESSION"), std::string::npos) << text;
  EXPECT_NE(text.find("homogeneous/serial"), std::string::npos) << text;
}

/// Ledger with one run plus a deterministic work-counters section.
std::string work_ledger(std::uint64_t sweeps, std::uint64_t br_evals = 4000,
                        bool with_counters = true) {
  std::ostringstream out;
  out << R"({"schema": "hecmine.bench.v1", "config": {"miners": 4},)"
      << R"( "runs": [{"label": "homogeneous/serial", "wall_ms": 100.0}])";
  if (with_counters) {
    out << R"(, "counters": {"homogeneous/serial": {"solves": 1,)"
        << R"( "sweeps": )" << sweeps << R"(, "best_response_evals": )"
        << br_evals << R"(, "cache_hits": 0}}})";
  } else {
    out << "}";
  }
  return out.str();
}

TEST(BenchCompare, InjectedSweepCountRegressionFailsTheGate) {
  const Value baseline = parse(work_ledger(1000));
  const Value bloated = parse(work_ledger(1200));  // +20% work, same timing
  const auto result = bench::compare_bench_json(baseline, bloated);
  EXPECT_FALSE(result.ok);
  bool found = false;
  for (const auto& delta : result.deltas) {
    if (delta.label == "counters.homogeneous/serial.sweeps") {
      EXPECT_TRUE(delta.regressed);
      EXPECT_NEAR(delta.ratio, 1.2, 1e-12);
      found = true;
    } else {
      EXPECT_FALSE(delta.regressed) << delta.label;
    }
  }
  EXPECT_TRUE(found);
}

TEST(BenchCompare, IdenticalWorkCountsPassTheGate) {
  const Value doc = parse(work_ledger(1000));
  const auto result = bench::compare_bench_json(doc, doc);
  EXPECT_TRUE(result.ok);
  // Deterministic counts compare exactly: every counter delta is present
  // and clean.
  bool saw_counter = false;
  for (const auto& delta : result.deltas)
    if (delta.label.rfind("counters.", 0) == 0) {
      saw_counter = true;
      EXPECT_FALSE(delta.regressed) << delta.label;
    }
  EXPECT_TRUE(saw_counter);
}

TEST(BenchCompare, WorkToleranceIsConfigurable) {
  const Value baseline = parse(work_ledger(1000));
  const Value bloated = parse(work_ledger(1200));
  bench::CompareOptions loose;
  loose.max_work_regression = 0.25;
  EXPECT_TRUE(bench::compare_bench_json(baseline, bloated, loose).ok);
  bench::CompareOptions off;
  off.check_counters = false;
  const auto result = bench::compare_bench_json(baseline, bloated, off);
  EXPECT_TRUE(result.ok);
  for (const auto& delta : result.deltas)
    EXPECT_EQ(delta.label.rfind("counters.", 0), std::string::npos);
}

TEST(BenchCompare, MissingCountersSectionSkipsTheCheck) {
  // Pre-counter baselines (and currents) stay comparable: the whole check
  // is skipped when either side lacks the section.
  const Value with = parse(work_ledger(1000));
  const Value without = parse(work_ledger(0, 0, false));
  EXPECT_TRUE(bench::compare_bench_json(without, with).ok);
  EXPECT_TRUE(bench::compare_bench_json(with, without).ok);
}

TEST(BenchCompare, NewAndVanishedWorkMetricsSkipNotFail) {
  // Baseline 0 -> current positive is new instrumentation, not a
  // regression; a label missing from the current counters is skipped.
  const Value zero = parse(work_ledger(0));
  const Value nonzero = parse(work_ledger(500));
  const auto grown = bench::compare_bench_json(zero, nonzero);
  EXPECT_TRUE(grown.ok);
  bool skipped = false;
  for (const auto& delta : grown.deltas)
    if (delta.label == "counters.homogeneous/serial.sweeps") {
      EXPECT_TRUE(delta.skipped);
      skipped = true;
    }
  EXPECT_TRUE(skipped);

  const std::string other_label = R"({"schema": "hecmine.bench.v1",
    "config": {"miners": 4},
    "runs": [{"label": "homogeneous/serial", "wall_ms": 100.0}],
    "counters": {"homogeneous/parallel": {"sweeps": 7}}})";
  const auto renamed = bench::compare_bench_json(parse(work_ledger(1000)),
                                                 parse(other_label));
  EXPECT_TRUE(renamed.ok);
  bool label_skipped = false;
  for (const auto& delta : renamed.deltas)
    if (delta.label == "counters.homogeneous/serial" && delta.skipped)
      label_skipped = true;
  EXPECT_TRUE(label_skipped);
}

TEST(BenchCompare, StrictModePromotesWarningsToFailure) {
  const std::string base = ledger(100.0, 50.0, 0.0, 0.0);
  const Value baseline = parse(with_manifest(base, "aaa111", "Release"));
  const Value current = parse(with_manifest(base, "bbb222", "Release"));
  bench::CompareOptions options;
  // Non-strict: the git_sha mismatch only warns.
  EXPECT_TRUE(bench::compare_bench_json(baseline, current, options).ok);
  options.strict = true;
  const auto result = bench::compare_bench_json(baseline, current, options);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.strict_failed);
  ASSERT_EQ(result.warnings.size(), 1u);
  std::ostringstream os;
  bench::print_compare(os, result);
  EXPECT_NE(os.str().find("strict"), std::string::npos) << os.str();
  // Strict with nothing to warn about stays green.
  EXPECT_TRUE(bench::compare_bench_json(baseline, baseline, options).ok);
}

}  // namespace
