// Run-provenance tests: manifest determinism (identical inputs serialize
// identically, no timestamps), the schema-version table, run-half
// stamping from CLI arguments, and the embedded-manifest JSON shape that
// bench_compare and the trace/flight readers rely on.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "support/json.hpp"
#include "support/provenance.hpp"

namespace {

using namespace hecmine;
namespace provenance = support::provenance;
using support::json::Value;

TEST(Provenance, CollectIsDeterministic) {
  // The manifest is deliberately timestamp-free: two collections in the
  // same process must serialize byte-identically.
  const provenance::RunManifest first = provenance::collect();
  const provenance::RunManifest second = provenance::collect();
  EXPECT_EQ(provenance::to_json(first), provenance::to_json(second));
}

TEST(Provenance, BuildHalfIsFilled) {
  const provenance::RunManifest manifest = provenance::collect();
  EXPECT_FALSE(manifest.git_sha.empty());
  EXPECT_FALSE(manifest.build_type.empty());
  EXPECT_FALSE(manifest.compiler.empty());
  EXPECT_FALSE(manifest.os.empty());
  EXPECT_GE(manifest.hardware_concurrency, 1);
  // Run half stays at defaults until the caller stamps it.
  EXPECT_EQ(manifest.threads, 0);
  EXPECT_EQ(manifest.seed, 0u);
  EXPECT_TRUE(manifest.args.empty());
}

TEST(Provenance, RunHalfStampsThreadsSeedAndArgs) {
  const char* argv[] = {"hecmine_cli", "leader", "--miners=4"};
  const provenance::RunManifest manifest =
      provenance::collect(8, 1234, 3, argv);
  EXPECT_EQ(manifest.threads, 8);
  EXPECT_EQ(manifest.seed, 1234u);
  // argv[0] (the binary path) is skipped.
  ASSERT_EQ(manifest.args.size(), 2u);
  EXPECT_EQ(manifest.args[0], "leader");
  EXPECT_EQ(manifest.args[1], "--miners=4");
}

TEST(Provenance, NullArgvYieldsEmptyArgs) {
  const provenance::RunManifest manifest =
      provenance::collect(2, 7, 5, nullptr);
  EXPECT_TRUE(manifest.args.empty());
}

TEST(Provenance, SchemaTableCoversEveryArtifact) {
  const auto& versions = provenance::schema_versions();
  ASSERT_FALSE(versions.empty());
  // Sorted by artifact name so the manifest's schemas block is
  // deterministic.
  for (std::size_t i = 1; i < versions.size(); ++i) {
    EXPECT_LT(std::string(versions[i - 1].artifact),
              std::string(versions[i].artifact));
  }
  EXPECT_EQ(provenance::schema_version("telemetry"), "hecmine.telemetry.v1");
  EXPECT_EQ(provenance::schema_version("trace"), "hecmine.trace.v1");
  EXPECT_EQ(provenance::schema_version("iterlog"), "hecmine.iterlog.v1");
  EXPECT_EQ(provenance::schema_version("bench"), "hecmine.bench.v1");
  EXPECT_EQ(provenance::schema_version("flight"), "hecmine.flight.v1");
  EXPECT_EQ(provenance::schema_version("manifest"), "hecmine.manifest.v1");
  EXPECT_TRUE(provenance::schema_version("no-such-artifact").empty());
}

TEST(Provenance, JsonShapeMatchesManifestSchema) {
  provenance::RunManifest manifest = provenance::collect();
  manifest.threads = 4;
  manifest.seed = 42;
  manifest.args = {"leader", "--grid=8"};
  const Value doc = support::json::parse(provenance::to_json(manifest));
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("schema").as_string(), provenance::kManifestSchema);
  EXPECT_EQ(doc.at("git_sha").as_string(), manifest.git_sha);
  EXPECT_EQ(doc.at("build_type").as_string(), manifest.build_type);
  EXPECT_EQ(doc.at("compiler").as_string(), manifest.compiler);
  EXPECT_TRUE(doc.contains("sanitizer"));
  // The hardware perf sampler defaults off; the manifest records whether
  // an artifact's timings ran with it enabled.
  EXPECT_EQ(doc.at("perf_sampler").as_string(), "off");
  EXPECT_EQ(doc.at("os").as_string(), manifest.os);
  EXPECT_EQ(doc.at("host").as_string(), manifest.host);
  EXPECT_DOUBLE_EQ(doc.at("threads").as_number(), 4.0);
  EXPECT_DOUBLE_EQ(doc.at("seed").as_number(), 42.0);
  const auto& args = doc.at("args").as_array();
  ASSERT_EQ(args.size(), 2u);
  EXPECT_EQ(args[0].as_string(), "leader");
  EXPECT_EQ(args[1].as_string(), "--grid=8");
  // Every emittable artifact format is pinned in the schemas block.
  const Value& schemas = doc.at("schemas");
  ASSERT_TRUE(schemas.is_object());
  EXPECT_EQ(schemas.at("trace").as_string(), "hecmine.trace.v1");
  EXPECT_EQ(schemas.as_object().size(),
            provenance::schema_versions().size());
}

TEST(Provenance, WriterEmbeddingMatchesStandaloneDocument) {
  const provenance::RunManifest manifest = provenance::collect(2, 9, 0);
  std::ostringstream embedded;
  {
    support::json::Writer writer(embedded);
    writer.begin_object();
    writer.key("manifest");
    provenance::write(writer, manifest);
    writer.end_object();
    writer.finish();
  }
  const Value outer = support::json::parse(embedded.str());
  const Value standalone = support::json::parse(provenance::to_json(manifest));
  EXPECT_EQ(outer.at("manifest").at("git_sha").as_string(),
            standalone.at("git_sha").as_string());
  EXPECT_EQ(outer.at("manifest").at("schemas").as_object().size(),
            standalone.at("schemas").as_object().size());
}

}  // namespace
