// Tests for core/welfare: the rent-dissipation decomposition and its
// consistency with the equilibrium solvers.
#include "core/welfare.hpp"

#include <gtest/gtest.h>

#include "core/oracle.hpp"
#include "support/error.hpp"

namespace hecmine::core {
namespace {

NetworkParams default_params() {
  NetworkParams params;
  params.reward = 100.0;
  params.fork_rate = 0.2;
  params.edge_success = 0.9;
  params.edge_capacity = 8.0;
  params.cost_edge = 1.0;
  params.cost_cloud = 0.4;
  return params;
}

TEST(Welfare, DecompositionOnHandExample) {
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  const Totals totals{10.0, 20.0};
  const auto report = welfare_report(params, prices, totals);
  EXPECT_DOUBLE_EQ(report.miner_spend, 40.0);
  EXPECT_DOUBLE_EQ(report.miner_surplus, 60.0);
  EXPECT_DOUBLE_EQ(report.sp_profit_edge, 10.0);
  EXPECT_DOUBLE_EQ(report.sp_profit_cloud, 12.0);
  EXPECT_DOUBLE_EQ(report.resource_cost, 18.0);
  EXPECT_DOUBLE_EQ(report.social_welfare, 82.0);
  EXPECT_DOUBLE_EQ(report.dissipation, 0.4);
}

TEST(Welfare, IdentitiesHoldByConstruction) {
  const NetworkParams params = default_params();
  const Prices prices{2.5, 1.1};
  const Totals totals{4.0, 12.0};
  const auto report = welfare_report(params, prices, totals);
  EXPECT_NEAR(report.miner_surplus + report.sp_profit() +
                  report.resource_cost,
              params.reward, 1e-12);
  EXPECT_NEAR(report.social_welfare,
              report.miner_surplus + report.sp_profit(), 1e-12);
}

TEST(Welfare, AggregateUtilityMatchesIdentity) {
  // Theorem 1 makes aggregate income exactly R, so sum U_i = R - spend.
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  const std::vector<MinerRequest> requests{{2.0, 1.0}, {1.0, 3.0}, {0.5, 2.0}};
  const Totals totals = aggregate(requests);
  const double spend =
      prices.edge * totals.edge + prices.cloud * totals.cloud;
  EXPECT_NEAR(aggregate_utility(params, prices, requests),
              params.reward - spend, 1e-9);
}

TEST(Welfare, EquilibriumUtilitiesSumToTheReport) {
  // The NEP's per-miner utilities must aggregate to the welfare report's
  // miner surplus (h = 1 so the conditional model has no leak).
  NetworkParams params = default_params();
  params.edge_success = 1.0;
  const Prices prices{2.0, 1.0};
  const std::vector<double> budgets{20.0, 30.0, 40.0};
  const auto eq =
      solve_followers(params, prices, budgets, EdgeMode::kConnected);
  ASSERT_TRUE(eq.converged);
  const auto report = welfare_report(params, prices, eq);
  double sum = 0.0;
  for (double u : eq.utilities) sum += u;
  EXPECT_NEAR(sum, report.miner_surplus, 1e-6);
}

TEST(Welfare, DissipationRisesWithCompetition) {
  // More miners dissipate more of the prize (classic Tullock result:
  // spend -> R as n grows).
  const NetworkParams params = default_params();
  const Prices prices{2.0, 1.0};
  double previous = 0.0;
  for (int n : {2, 3, 5, 10, 20}) {
    const auto eq = solve_followers_symmetric(params, prices, 1e6, n,
                                              EdgeMode::kConnected);
    const auto report = welfare_report(params, prices, eq);
    EXPECT_GT(report.dissipation, previous);
    EXPECT_LT(report.dissipation, 1.0);  // never exceeds the prize
    previous = report.dissipation;
  }
}

TEST(Welfare, SocialWelfareHigherWhenCapacityRestrainsCompetition) {
  // The standalone cap is a welfare-improving commitment device: it limits
  // rent dissipation on the (costlier) edge resource.
  const NetworkParams params = default_params();  // E_max = 8 binds below
  const Prices prices{2.0, 1.0};
  const std::vector<double> budgets{40.0, 40.0, 40.0, 40.0, 40.0};
  const auto connected = ConnectedNepOracle(params, budgets).solve(prices);
  const auto standalone = StandaloneGnepOracle(params, budgets).solve(prices);
  ASSERT_TRUE(standalone.cap_active);
  const auto report_connected = welfare_report(params, prices, connected);
  const auto report_standalone = welfare_report(params, prices, standalone);
  EXPECT_GT(report_standalone.miner_surplus, report_connected.miner_surplus);
}

TEST(Welfare, ValidatesInputs) {
  const NetworkParams params = default_params();
  EXPECT_THROW((void)welfare_report(params, {0.0, 1.0}, Totals{1.0, 1.0}),
               support::PreconditionError);
  EXPECT_THROW((void)welfare_report(params, {1.0, 1.0}, Totals{-1.0, 1.0}),
               support::PreconditionError);
}

}  // namespace
}  // namespace hecmine::core
