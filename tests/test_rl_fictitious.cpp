// Tests for fictitious play over published aggregates.
#include "rl/fictitious.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/dynamic.hpp"
#include "core/oracle.hpp"
#include "support/error.hpp"

namespace hecmine::rl {
namespace {

core::NetworkParams default_params() {
  core::NetworkParams params;
  params.reward = 100.0;
  params.fork_rate = 0.2;
  params.edge_success = 0.9;
  params.edge_capacity = 20.0;
  return params;
}

TEST(FictitiousPlay, FixedPopulationConvergesToTheNe) {
  const core::NetworkParams params = default_params();
  const core::Prices prices{2.0, 1.0};
  const double budget = 12.0;
  const core::PopulationModel fixed(5.0, 0.0, 1, 5);
  FictitiousPlayConfig config;
  config.blocks = 600;
  config.edge_success = 0.9;
  const auto played =
      run_fictitious_play(params, prices, budget, fixed, config, 51);
  const auto analytic = core::solve_followers_symmetric(
      params, prices, budget, 5, core::EdgeMode::kConnected);
  ASSERT_TRUE(analytic.converged);
  // Continuous actions: fictitious play converges far tighter than the
  // grid-based bandits.
  EXPECT_NEAR(played.mean.edge, analytic.request().edge, 0.02);
  EXPECT_NEAR(played.mean.cloud, analytic.request().cloud, 0.1);
  // The final belief matches (n-1) times the symmetric strategy.
  EXPECT_NEAR(played.belief_edge, 4.0 * analytic.request().edge, 0.1);
}

TEST(FictitiousPlay, UncertainPopulationTracksDynamicEquilibrium) {
  const core::NetworkParams params = default_params();
  const core::Prices prices{2.0, 1.0};
  const double budget = 12.0;
  const core::PopulationModel uncertain =
      core::PopulationModel::around(10.0, 2.0);
  FictitiousPlayConfig config;
  config.blocks = 1500;
  config.edge_success = 0.5;
  const auto played =
      run_fictitious_play(params, prices, budget, uncertain, config, 52);

  core::DynamicGameConfig dyn;
  dyn.params = params;
  dyn.prices = prices;
  dyn.budget = budget;
  dyn.edge_success = 0.5;
  const auto analytic = core::solve_dynamic_symmetric(dyn, uncertain);
  ASSERT_TRUE(analytic.converged);
  // Fictitious play best-responds to the *mean* aggregate rather than the
  // full distribution, so it lands near — not exactly on — the dynamic
  // equilibrium (the gap is the value of distributional information).
  EXPECT_NEAR(played.mean.edge, analytic.request.edge,
              0.15 * analytic.request.edge + 0.05);
  EXPECT_NEAR(played.mean.cloud, analytic.request.cloud,
              0.15 * analytic.request.cloud + 0.1);
}

TEST(FictitiousPlay, ConvergesFromAnySeedStrategy) {
  // The belief dynamics wash out the initial strategies.
  const core::NetworkParams params = default_params();
  const core::Prices prices{2.0, 1.0};
  const core::PopulationModel fixed(4.0, 0.0, 1, 4);
  FictitiousPlayConfig config;
  config.blocks = 800;
  config.edge_success = 0.9;
  const auto run_a =
      run_fictitious_play(params, prices, 15.0, fixed, config, 53);
  const auto run_b =
      run_fictitious_play(params, prices, 15.0, fixed, config, 54);
  EXPECT_NEAR(run_a.mean.edge, run_b.mean.edge, 0.05);
  EXPECT_NEAR(run_a.mean.cloud, run_b.mean.cloud, 0.15);
}

TEST(FictitiousPlay, RespectsBudgets) {
  const core::NetworkParams params = default_params();
  const core::Prices prices{2.0, 1.0};
  const double budget = 5.0;
  const core::PopulationModel fixed(5.0, 0.0, 1, 5);
  FictitiousPlayConfig config;
  config.blocks = 300;
  const auto played =
      run_fictitious_play(params, prices, budget, fixed, config, 55);
  for (const auto& strategy : played.strategies) {
    EXPECT_LE(core::request_cost(strategy, prices), budget + 1e-7);
  }
}

TEST(FictitiousPlay, ValidatesInputs) {
  const core::NetworkParams params = default_params();
  const core::PopulationModel fixed(3.0, 0.0, 1, 3);
  FictitiousPlayConfig config;
  config.blocks = 0;
  EXPECT_THROW(
      (void)run_fictitious_play(params, {2.0, 1.0}, 10.0, fixed, config, 1),
      support::PreconditionError);
  config = FictitiousPlayConfig{};
  EXPECT_THROW(
      (void)run_fictitious_play(params, {2.0, 1.0}, 0.0, fixed, config, 1),
      support::PreconditionError);
}

}  // namespace
}  // namespace hecmine::rl
