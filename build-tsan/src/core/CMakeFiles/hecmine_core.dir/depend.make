# Empty dependencies file for hecmine_core.
# This may be replaced when dependencies are built.
