
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/audit.cpp" "src/core/CMakeFiles/hecmine_core.dir/audit.cpp.o" "gcc" "src/core/CMakeFiles/hecmine_core.dir/audit.cpp.o.d"
  "/root/repo/src/core/closed_forms.cpp" "src/core/CMakeFiles/hecmine_core.dir/closed_forms.cpp.o" "gcc" "src/core/CMakeFiles/hecmine_core.dir/closed_forms.cpp.o.d"
  "/root/repo/src/core/decentralization.cpp" "src/core/CMakeFiles/hecmine_core.dir/decentralization.cpp.o" "gcc" "src/core/CMakeFiles/hecmine_core.dir/decentralization.cpp.o.d"
  "/root/repo/src/core/dynamic.cpp" "src/core/CMakeFiles/hecmine_core.dir/dynamic.cpp.o" "gcc" "src/core/CMakeFiles/hecmine_core.dir/dynamic.cpp.o.d"
  "/root/repo/src/core/dynamic_types.cpp" "src/core/CMakeFiles/hecmine_core.dir/dynamic_types.cpp.o" "gcc" "src/core/CMakeFiles/hecmine_core.dir/dynamic_types.cpp.o.d"
  "/root/repo/src/core/equilibrium.cpp" "src/core/CMakeFiles/hecmine_core.dir/equilibrium.cpp.o" "gcc" "src/core/CMakeFiles/hecmine_core.dir/equilibrium.cpp.o.d"
  "/root/repo/src/core/equilibrium_cache.cpp" "src/core/CMakeFiles/hecmine_core.dir/equilibrium_cache.cpp.o" "gcc" "src/core/CMakeFiles/hecmine_core.dir/equilibrium_cache.cpp.o.d"
  "/root/repo/src/core/miner.cpp" "src/core/CMakeFiles/hecmine_core.dir/miner.cpp.o" "gcc" "src/core/CMakeFiles/hecmine_core.dir/miner.cpp.o.d"
  "/root/repo/src/core/multi_esp.cpp" "src/core/CMakeFiles/hecmine_core.dir/multi_esp.cpp.o" "gcc" "src/core/CMakeFiles/hecmine_core.dir/multi_esp.cpp.o.d"
  "/root/repo/src/core/oracle.cpp" "src/core/CMakeFiles/hecmine_core.dir/oracle.cpp.o" "gcc" "src/core/CMakeFiles/hecmine_core.dir/oracle.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/core/CMakeFiles/hecmine_core.dir/params.cpp.o" "gcc" "src/core/CMakeFiles/hecmine_core.dir/params.cpp.o.d"
  "/root/repo/src/core/population.cpp" "src/core/CMakeFiles/hecmine_core.dir/population.cpp.o" "gcc" "src/core/CMakeFiles/hecmine_core.dir/population.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/core/CMakeFiles/hecmine_core.dir/scenario.cpp.o" "gcc" "src/core/CMakeFiles/hecmine_core.dir/scenario.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "src/core/CMakeFiles/hecmine_core.dir/sensitivity.cpp.o" "gcc" "src/core/CMakeFiles/hecmine_core.dir/sensitivity.cpp.o.d"
  "/root/repo/src/core/sp.cpp" "src/core/CMakeFiles/hecmine_core.dir/sp.cpp.o" "gcc" "src/core/CMakeFiles/hecmine_core.dir/sp.cpp.o.d"
  "/root/repo/src/core/types.cpp" "src/core/CMakeFiles/hecmine_core.dir/types.cpp.o" "gcc" "src/core/CMakeFiles/hecmine_core.dir/types.cpp.o.d"
  "/root/repo/src/core/welfare.cpp" "src/core/CMakeFiles/hecmine_core.dir/welfare.cpp.o" "gcc" "src/core/CMakeFiles/hecmine_core.dir/welfare.cpp.o.d"
  "/root/repo/src/core/winning.cpp" "src/core/CMakeFiles/hecmine_core.dir/winning.cpp.o" "gcc" "src/core/CMakeFiles/hecmine_core.dir/winning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/game/CMakeFiles/hecmine_game.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/numerics/CMakeFiles/hecmine_numerics.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/hecmine_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
