file(REMOVE_RECURSE
  "libhecmine_core.a"
)
