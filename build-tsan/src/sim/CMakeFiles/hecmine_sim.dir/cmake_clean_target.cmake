file(REMOVE_RECURSE
  "libhecmine_sim.a"
)
