# Empty dependencies file for hecmine_sim.
# This may be replaced when dependencies are built.
