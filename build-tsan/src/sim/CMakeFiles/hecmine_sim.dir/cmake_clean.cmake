file(REMOVE_RECURSE
  "CMakeFiles/hecmine_sim.dir/event_queue.cpp.o"
  "CMakeFiles/hecmine_sim.dir/event_queue.cpp.o.d"
  "libhecmine_sim.a"
  "libhecmine_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hecmine_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
