
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/cli.cpp" "src/support/CMakeFiles/hecmine_support.dir/cli.cpp.o" "gcc" "src/support/CMakeFiles/hecmine_support.dir/cli.cpp.o.d"
  "/root/repo/src/support/config.cpp" "src/support/CMakeFiles/hecmine_support.dir/config.cpp.o" "gcc" "src/support/CMakeFiles/hecmine_support.dir/config.cpp.o.d"
  "/root/repo/src/support/json.cpp" "src/support/CMakeFiles/hecmine_support.dir/json.cpp.o" "gcc" "src/support/CMakeFiles/hecmine_support.dir/json.cpp.o.d"
  "/root/repo/src/support/log.cpp" "src/support/CMakeFiles/hecmine_support.dir/log.cpp.o" "gcc" "src/support/CMakeFiles/hecmine_support.dir/log.cpp.o.d"
  "/root/repo/src/support/parallel.cpp" "src/support/CMakeFiles/hecmine_support.dir/parallel.cpp.o" "gcc" "src/support/CMakeFiles/hecmine_support.dir/parallel.cpp.o.d"
  "/root/repo/src/support/provenance.cpp" "src/support/CMakeFiles/hecmine_support.dir/provenance.cpp.o" "gcc" "src/support/CMakeFiles/hecmine_support.dir/provenance.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/support/CMakeFiles/hecmine_support.dir/rng.cpp.o" "gcc" "src/support/CMakeFiles/hecmine_support.dir/rng.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "src/support/CMakeFiles/hecmine_support.dir/stats.cpp.o" "gcc" "src/support/CMakeFiles/hecmine_support.dir/stats.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/support/CMakeFiles/hecmine_support.dir/table.cpp.o" "gcc" "src/support/CMakeFiles/hecmine_support.dir/table.cpp.o.d"
  "/root/repo/src/support/telemetry.cpp" "src/support/CMakeFiles/hecmine_support.dir/telemetry.cpp.o" "gcc" "src/support/CMakeFiles/hecmine_support.dir/telemetry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
