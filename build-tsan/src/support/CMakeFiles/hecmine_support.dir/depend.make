# Empty dependencies file for hecmine_support.
# This may be replaced when dependencies are built.
