file(REMOVE_RECURSE
  "libhecmine_support.a"
)
