file(REMOVE_RECURSE
  "CMakeFiles/hecmine_support.dir/cli.cpp.o"
  "CMakeFiles/hecmine_support.dir/cli.cpp.o.d"
  "CMakeFiles/hecmine_support.dir/config.cpp.o"
  "CMakeFiles/hecmine_support.dir/config.cpp.o.d"
  "CMakeFiles/hecmine_support.dir/json.cpp.o"
  "CMakeFiles/hecmine_support.dir/json.cpp.o.d"
  "CMakeFiles/hecmine_support.dir/log.cpp.o"
  "CMakeFiles/hecmine_support.dir/log.cpp.o.d"
  "CMakeFiles/hecmine_support.dir/parallel.cpp.o"
  "CMakeFiles/hecmine_support.dir/parallel.cpp.o.d"
  "CMakeFiles/hecmine_support.dir/provenance.cpp.o"
  "CMakeFiles/hecmine_support.dir/provenance.cpp.o.d"
  "CMakeFiles/hecmine_support.dir/rng.cpp.o"
  "CMakeFiles/hecmine_support.dir/rng.cpp.o.d"
  "CMakeFiles/hecmine_support.dir/stats.cpp.o"
  "CMakeFiles/hecmine_support.dir/stats.cpp.o.d"
  "CMakeFiles/hecmine_support.dir/table.cpp.o"
  "CMakeFiles/hecmine_support.dir/table.cpp.o.d"
  "CMakeFiles/hecmine_support.dir/telemetry.cpp.o"
  "CMakeFiles/hecmine_support.dir/telemetry.cpp.o.d"
  "libhecmine_support.a"
  "libhecmine_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hecmine_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
