file(REMOVE_RECURSE
  "libhecmine_net.a"
)
