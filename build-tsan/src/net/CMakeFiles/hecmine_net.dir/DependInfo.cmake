
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/campaign.cpp" "src/net/CMakeFiles/hecmine_net.dir/campaign.cpp.o" "gcc" "src/net/CMakeFiles/hecmine_net.dir/campaign.cpp.o.d"
  "/root/repo/src/net/event_sim.cpp" "src/net/CMakeFiles/hecmine_net.dir/event_sim.cpp.o" "gcc" "src/net/CMakeFiles/hecmine_net.dir/event_sim.cpp.o.d"
  "/root/repo/src/net/latency.cpp" "src/net/CMakeFiles/hecmine_net.dir/latency.cpp.o" "gcc" "src/net/CMakeFiles/hecmine_net.dir/latency.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/hecmine_net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/hecmine_net.dir/network.cpp.o.d"
  "/root/repo/src/net/offload.cpp" "src/net/CMakeFiles/hecmine_net.dir/offload.cpp.o" "gcc" "src/net/CMakeFiles/hecmine_net.dir/offload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/chain/CMakeFiles/hecmine_chain.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/hecmine_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/hecmine_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/hecmine_support.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/game/CMakeFiles/hecmine_game.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/numerics/CMakeFiles/hecmine_numerics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
