file(REMOVE_RECURSE
  "CMakeFiles/hecmine_net.dir/campaign.cpp.o"
  "CMakeFiles/hecmine_net.dir/campaign.cpp.o.d"
  "CMakeFiles/hecmine_net.dir/event_sim.cpp.o"
  "CMakeFiles/hecmine_net.dir/event_sim.cpp.o.d"
  "CMakeFiles/hecmine_net.dir/latency.cpp.o"
  "CMakeFiles/hecmine_net.dir/latency.cpp.o.d"
  "CMakeFiles/hecmine_net.dir/network.cpp.o"
  "CMakeFiles/hecmine_net.dir/network.cpp.o.d"
  "CMakeFiles/hecmine_net.dir/offload.cpp.o"
  "CMakeFiles/hecmine_net.dir/offload.cpp.o.d"
  "libhecmine_net.a"
  "libhecmine_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hecmine_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
