# Empty dependencies file for hecmine_net.
# This may be replaced when dependencies are built.
