file(REMOVE_RECURSE
  "CMakeFiles/hecmine_game.dir/gnep.cpp.o"
  "CMakeFiles/hecmine_game.dir/gnep.cpp.o.d"
  "CMakeFiles/hecmine_game.dir/nash.cpp.o"
  "CMakeFiles/hecmine_game.dir/nash.cpp.o.d"
  "CMakeFiles/hecmine_game.dir/stackelberg.cpp.o"
  "CMakeFiles/hecmine_game.dir/stackelberg.cpp.o.d"
  "CMakeFiles/hecmine_game.dir/trajectory.cpp.o"
  "CMakeFiles/hecmine_game.dir/trajectory.cpp.o.d"
  "libhecmine_game.a"
  "libhecmine_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hecmine_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
