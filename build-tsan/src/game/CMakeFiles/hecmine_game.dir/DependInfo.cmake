
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/game/gnep.cpp" "src/game/CMakeFiles/hecmine_game.dir/gnep.cpp.o" "gcc" "src/game/CMakeFiles/hecmine_game.dir/gnep.cpp.o.d"
  "/root/repo/src/game/nash.cpp" "src/game/CMakeFiles/hecmine_game.dir/nash.cpp.o" "gcc" "src/game/CMakeFiles/hecmine_game.dir/nash.cpp.o.d"
  "/root/repo/src/game/stackelberg.cpp" "src/game/CMakeFiles/hecmine_game.dir/stackelberg.cpp.o" "gcc" "src/game/CMakeFiles/hecmine_game.dir/stackelberg.cpp.o.d"
  "/root/repo/src/game/trajectory.cpp" "src/game/CMakeFiles/hecmine_game.dir/trajectory.cpp.o" "gcc" "src/game/CMakeFiles/hecmine_game.dir/trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/numerics/CMakeFiles/hecmine_numerics.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/hecmine_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
