# Empty dependencies file for hecmine_game.
# This may be replaced when dependencies are built.
