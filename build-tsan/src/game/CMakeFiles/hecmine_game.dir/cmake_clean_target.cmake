file(REMOVE_RECURSE
  "libhecmine_game.a"
)
