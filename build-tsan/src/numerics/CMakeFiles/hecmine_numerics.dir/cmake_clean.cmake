file(REMOVE_RECURSE
  "CMakeFiles/hecmine_numerics.dir/fixed_point.cpp.o"
  "CMakeFiles/hecmine_numerics.dir/fixed_point.cpp.o.d"
  "CMakeFiles/hecmine_numerics.dir/gradient.cpp.o"
  "CMakeFiles/hecmine_numerics.dir/gradient.cpp.o.d"
  "CMakeFiles/hecmine_numerics.dir/optimize.cpp.o"
  "CMakeFiles/hecmine_numerics.dir/optimize.cpp.o.d"
  "CMakeFiles/hecmine_numerics.dir/pga.cpp.o"
  "CMakeFiles/hecmine_numerics.dir/pga.cpp.o.d"
  "CMakeFiles/hecmine_numerics.dir/poly.cpp.o"
  "CMakeFiles/hecmine_numerics.dir/poly.cpp.o.d"
  "CMakeFiles/hecmine_numerics.dir/projection.cpp.o"
  "CMakeFiles/hecmine_numerics.dir/projection.cpp.o.d"
  "CMakeFiles/hecmine_numerics.dir/roots.cpp.o"
  "CMakeFiles/hecmine_numerics.dir/roots.cpp.o.d"
  "CMakeFiles/hecmine_numerics.dir/vi.cpp.o"
  "CMakeFiles/hecmine_numerics.dir/vi.cpp.o.d"
  "libhecmine_numerics.a"
  "libhecmine_numerics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hecmine_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
