file(REMOVE_RECURSE
  "libhecmine_numerics.a"
)
