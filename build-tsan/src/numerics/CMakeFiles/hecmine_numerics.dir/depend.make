# Empty dependencies file for hecmine_numerics.
# This may be replaced when dependencies are built.
