
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numerics/fixed_point.cpp" "src/numerics/CMakeFiles/hecmine_numerics.dir/fixed_point.cpp.o" "gcc" "src/numerics/CMakeFiles/hecmine_numerics.dir/fixed_point.cpp.o.d"
  "/root/repo/src/numerics/gradient.cpp" "src/numerics/CMakeFiles/hecmine_numerics.dir/gradient.cpp.o" "gcc" "src/numerics/CMakeFiles/hecmine_numerics.dir/gradient.cpp.o.d"
  "/root/repo/src/numerics/optimize.cpp" "src/numerics/CMakeFiles/hecmine_numerics.dir/optimize.cpp.o" "gcc" "src/numerics/CMakeFiles/hecmine_numerics.dir/optimize.cpp.o.d"
  "/root/repo/src/numerics/pga.cpp" "src/numerics/CMakeFiles/hecmine_numerics.dir/pga.cpp.o" "gcc" "src/numerics/CMakeFiles/hecmine_numerics.dir/pga.cpp.o.d"
  "/root/repo/src/numerics/poly.cpp" "src/numerics/CMakeFiles/hecmine_numerics.dir/poly.cpp.o" "gcc" "src/numerics/CMakeFiles/hecmine_numerics.dir/poly.cpp.o.d"
  "/root/repo/src/numerics/projection.cpp" "src/numerics/CMakeFiles/hecmine_numerics.dir/projection.cpp.o" "gcc" "src/numerics/CMakeFiles/hecmine_numerics.dir/projection.cpp.o.d"
  "/root/repo/src/numerics/roots.cpp" "src/numerics/CMakeFiles/hecmine_numerics.dir/roots.cpp.o" "gcc" "src/numerics/CMakeFiles/hecmine_numerics.dir/roots.cpp.o.d"
  "/root/repo/src/numerics/vi.cpp" "src/numerics/CMakeFiles/hecmine_numerics.dir/vi.cpp.o" "gcc" "src/numerics/CMakeFiles/hecmine_numerics.dir/vi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/support/CMakeFiles/hecmine_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
