file(REMOVE_RECURSE
  "CMakeFiles/hecmine_rl.dir/fictitious.cpp.o"
  "CMakeFiles/hecmine_rl.dir/fictitious.cpp.o.d"
  "CMakeFiles/hecmine_rl.dir/learner.cpp.o"
  "CMakeFiles/hecmine_rl.dir/learner.cpp.o.d"
  "CMakeFiles/hecmine_rl.dir/trainer.cpp.o"
  "CMakeFiles/hecmine_rl.dir/trainer.cpp.o.d"
  "libhecmine_rl.a"
  "libhecmine_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hecmine_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
