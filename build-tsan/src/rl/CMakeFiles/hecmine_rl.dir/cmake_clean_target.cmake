file(REMOVE_RECURSE
  "libhecmine_rl.a"
)
