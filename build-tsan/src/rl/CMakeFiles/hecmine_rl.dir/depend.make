# Empty dependencies file for hecmine_rl.
# This may be replaced when dependencies are built.
