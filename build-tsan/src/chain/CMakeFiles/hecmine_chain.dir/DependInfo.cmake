
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/block.cpp" "src/chain/CMakeFiles/hecmine_chain.dir/block.cpp.o" "gcc" "src/chain/CMakeFiles/hecmine_chain.dir/block.cpp.o.d"
  "/root/repo/src/chain/difficulty.cpp" "src/chain/CMakeFiles/hecmine_chain.dir/difficulty.cpp.o" "gcc" "src/chain/CMakeFiles/hecmine_chain.dir/difficulty.cpp.o.d"
  "/root/repo/src/chain/race.cpp" "src/chain/CMakeFiles/hecmine_chain.dir/race.cpp.o" "gcc" "src/chain/CMakeFiles/hecmine_chain.dir/race.cpp.o.d"
  "/root/repo/src/chain/simulator.cpp" "src/chain/CMakeFiles/hecmine_chain.dir/simulator.cpp.o" "gcc" "src/chain/CMakeFiles/hecmine_chain.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/support/CMakeFiles/hecmine_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
