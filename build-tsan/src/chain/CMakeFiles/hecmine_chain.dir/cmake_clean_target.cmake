file(REMOVE_RECURSE
  "libhecmine_chain.a"
)
