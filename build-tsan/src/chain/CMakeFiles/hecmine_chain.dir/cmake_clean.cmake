file(REMOVE_RECURSE
  "CMakeFiles/hecmine_chain.dir/block.cpp.o"
  "CMakeFiles/hecmine_chain.dir/block.cpp.o.d"
  "CMakeFiles/hecmine_chain.dir/difficulty.cpp.o"
  "CMakeFiles/hecmine_chain.dir/difficulty.cpp.o.d"
  "CMakeFiles/hecmine_chain.dir/race.cpp.o"
  "CMakeFiles/hecmine_chain.dir/race.cpp.o.d"
  "CMakeFiles/hecmine_chain.dir/simulator.cpp.o"
  "CMakeFiles/hecmine_chain.dir/simulator.cpp.o.d"
  "libhecmine_chain.a"
  "libhecmine_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hecmine_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
