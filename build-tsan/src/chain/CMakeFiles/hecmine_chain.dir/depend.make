# Empty dependencies file for hecmine_chain.
# This may be replaced when dependencies are built.
