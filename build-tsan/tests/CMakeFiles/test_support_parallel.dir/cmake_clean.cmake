file(REMOVE_RECURSE
  "CMakeFiles/test_support_parallel.dir/test_support_parallel.cpp.o"
  "CMakeFiles/test_support_parallel.dir/test_support_parallel.cpp.o.d"
  "test_support_parallel"
  "test_support_parallel.pdb"
  "test_support_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
