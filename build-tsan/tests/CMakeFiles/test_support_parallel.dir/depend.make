# Empty dependencies file for test_support_parallel.
# This may be replaced when dependencies are built.
