# Empty compiler generated dependencies file for test_support_telemetry.
# This may be replaced when dependencies are built.
