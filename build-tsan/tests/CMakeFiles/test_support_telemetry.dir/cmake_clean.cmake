file(REMOVE_RECURSE
  "CMakeFiles/test_support_telemetry.dir/test_support_telemetry.cpp.o"
  "CMakeFiles/test_support_telemetry.dir/test_support_telemetry.cpp.o.d"
  "test_support_telemetry"
  "test_support_telemetry.pdb"
  "test_support_telemetry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
