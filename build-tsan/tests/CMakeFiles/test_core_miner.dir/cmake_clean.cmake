file(REMOVE_RECURSE
  "CMakeFiles/test_core_miner.dir/test_core_miner.cpp.o"
  "CMakeFiles/test_core_miner.dir/test_core_miner.cpp.o.d"
  "test_core_miner"
  "test_core_miner.pdb"
  "test_core_miner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_miner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
