# Empty compiler generated dependencies file for test_core_miner.
# This may be replaced when dependencies are built.
