# Empty dependencies file for test_support_config_scenario.
# This may be replaced when dependencies are built.
