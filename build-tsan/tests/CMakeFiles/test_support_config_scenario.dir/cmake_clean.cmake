file(REMOVE_RECURSE
  "CMakeFiles/test_support_config_scenario.dir/test_support_config_scenario.cpp.o"
  "CMakeFiles/test_support_config_scenario.dir/test_support_config_scenario.cpp.o.d"
  "test_support_config_scenario"
  "test_support_config_scenario.pdb"
  "test_support_config_scenario[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_config_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
