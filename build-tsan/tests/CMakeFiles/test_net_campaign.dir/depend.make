# Empty dependencies file for test_net_campaign.
# This may be replaced when dependencies are built.
