file(REMOVE_RECURSE
  "CMakeFiles/test_net_campaign.dir/test_net_campaign.cpp.o"
  "CMakeFiles/test_net_campaign.dir/test_net_campaign.cpp.o.d"
  "test_net_campaign"
  "test_net_campaign.pdb"
  "test_net_campaign[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
