# Empty compiler generated dependencies file for test_game_gnep_stackelberg.
# This may be replaced when dependencies are built.
