file(REMOVE_RECURSE
  "CMakeFiles/test_game_gnep_stackelberg.dir/test_game_gnep_stackelberg.cpp.o"
  "CMakeFiles/test_game_gnep_stackelberg.dir/test_game_gnep_stackelberg.cpp.o.d"
  "test_game_gnep_stackelberg"
  "test_game_gnep_stackelberg.pdb"
  "test_game_gnep_stackelberg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_game_gnep_stackelberg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
