# Empty dependencies file for test_core_dynamic_types.
# This may be replaced when dependencies are built.
