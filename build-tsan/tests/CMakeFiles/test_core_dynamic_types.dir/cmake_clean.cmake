file(REMOVE_RECURSE
  "CMakeFiles/test_core_dynamic_types.dir/test_core_dynamic_types.cpp.o"
  "CMakeFiles/test_core_dynamic_types.dir/test_core_dynamic_types.cpp.o.d"
  "test_core_dynamic_types"
  "test_core_dynamic_types.pdb"
  "test_core_dynamic_types[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_dynamic_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
