file(REMOVE_RECURSE
  "CMakeFiles/test_cross_consistency.dir/test_cross_consistency.cpp.o"
  "CMakeFiles/test_cross_consistency.dir/test_cross_consistency.cpp.o.d"
  "test_cross_consistency"
  "test_cross_consistency.pdb"
  "test_cross_consistency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cross_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
