# Empty dependencies file for test_cross_consistency.
# This may be replaced when dependencies are built.
