file(REMOVE_RECURSE
  "CMakeFiles/test_core_equilibrium.dir/test_core_equilibrium.cpp.o"
  "CMakeFiles/test_core_equilibrium.dir/test_core_equilibrium.cpp.o.d"
  "test_core_equilibrium"
  "test_core_equilibrium.pdb"
  "test_core_equilibrium[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_equilibrium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
