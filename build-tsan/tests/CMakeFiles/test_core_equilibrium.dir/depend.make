# Empty dependencies file for test_core_equilibrium.
# This may be replaced when dependencies are built.
