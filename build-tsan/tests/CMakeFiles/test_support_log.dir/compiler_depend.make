# Empty compiler generated dependencies file for test_support_log.
# This may be replaced when dependencies are built.
