file(REMOVE_RECURSE
  "CMakeFiles/test_support_log.dir/test_support_log.cpp.o"
  "CMakeFiles/test_support_log.dir/test_support_log.cpp.o.d"
  "test_support_log"
  "test_support_log.pdb"
  "test_support_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
