# Empty compiler generated dependencies file for test_core_multi_esp.
# This may be replaced when dependencies are built.
