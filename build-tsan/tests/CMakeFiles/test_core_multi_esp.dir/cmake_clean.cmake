file(REMOVE_RECURSE
  "CMakeFiles/test_core_multi_esp.dir/test_core_multi_esp.cpp.o"
  "CMakeFiles/test_core_multi_esp.dir/test_core_multi_esp.cpp.o.d"
  "test_core_multi_esp"
  "test_core_multi_esp.pdb"
  "test_core_multi_esp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_multi_esp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
