# Empty dependencies file for test_core_population_dynamic.
# This may be replaced when dependencies are built.
