file(REMOVE_RECURSE
  "CMakeFiles/test_core_population_dynamic.dir/test_core_population_dynamic.cpp.o"
  "CMakeFiles/test_core_population_dynamic.dir/test_core_population_dynamic.cpp.o.d"
  "test_core_population_dynamic"
  "test_core_population_dynamic.pdb"
  "test_core_population_dynamic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_population_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
