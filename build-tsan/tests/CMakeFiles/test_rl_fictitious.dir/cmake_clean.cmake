file(REMOVE_RECURSE
  "CMakeFiles/test_rl_fictitious.dir/test_rl_fictitious.cpp.o"
  "CMakeFiles/test_rl_fictitious.dir/test_rl_fictitious.cpp.o.d"
  "test_rl_fictitious"
  "test_rl_fictitious.pdb"
  "test_rl_fictitious[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rl_fictitious.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
