# Empty dependencies file for test_rl_fictitious.
# This may be replaced when dependencies are built.
