file(REMOVE_RECURSE
  "CMakeFiles/test_rl_learners.dir/test_rl_learners.cpp.o"
  "CMakeFiles/test_rl_learners.dir/test_rl_learners.cpp.o.d"
  "test_rl_learners"
  "test_rl_learners.pdb"
  "test_rl_learners[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rl_learners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
