# Empty dependencies file for test_rl_learners.
# This may be replaced when dependencies are built.
