file(REMOVE_RECURSE
  "CMakeFiles/test_support_flight_recorder.dir/test_support_flight_recorder.cpp.o"
  "CMakeFiles/test_support_flight_recorder.dir/test_support_flight_recorder.cpp.o.d"
  "test_support_flight_recorder"
  "test_support_flight_recorder.pdb"
  "test_support_flight_recorder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_flight_recorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
