# Empty compiler generated dependencies file for test_support_flight_recorder.
# This may be replaced when dependencies are built.
