file(REMOVE_RECURSE
  "CMakeFiles/test_support_provenance.dir/test_support_provenance.cpp.o"
  "CMakeFiles/test_support_provenance.dir/test_support_provenance.cpp.o.d"
  "test_support_provenance"
  "test_support_provenance.pdb"
  "test_support_provenance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_provenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
