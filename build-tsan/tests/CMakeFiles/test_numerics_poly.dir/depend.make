# Empty dependencies file for test_numerics_poly.
# This may be replaced when dependencies are built.
