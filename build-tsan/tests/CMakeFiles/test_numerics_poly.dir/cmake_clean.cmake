file(REMOVE_RECURSE
  "CMakeFiles/test_numerics_poly.dir/test_numerics_poly.cpp.o"
  "CMakeFiles/test_numerics_poly.dir/test_numerics_poly.cpp.o.d"
  "test_numerics_poly"
  "test_numerics_poly.pdb"
  "test_numerics_poly[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numerics_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
