file(REMOVE_RECURSE
  "CMakeFiles/test_core_decentralization.dir/test_core_decentralization.cpp.o"
  "CMakeFiles/test_core_decentralization.dir/test_core_decentralization.cpp.o.d"
  "test_core_decentralization"
  "test_core_decentralization.pdb"
  "test_core_decentralization[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_decentralization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
