# Empty dependencies file for test_core_decentralization.
# This may be replaced when dependencies are built.
