file(REMOVE_RECURSE
  "CMakeFiles/test_core_winning.dir/test_core_winning.cpp.o"
  "CMakeFiles/test_core_winning.dir/test_core_winning.cpp.o.d"
  "test_core_winning"
  "test_core_winning.pdb"
  "test_core_winning[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_winning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
