# Empty compiler generated dependencies file for test_core_winning.
# This may be replaced when dependencies are built.
