file(REMOVE_RECURSE
  "CMakeFiles/test_numerics_solvers.dir/test_numerics_solvers.cpp.o"
  "CMakeFiles/test_numerics_solvers.dir/test_numerics_solvers.cpp.o.d"
  "test_numerics_solvers"
  "test_numerics_solvers.pdb"
  "test_numerics_solvers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numerics_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
