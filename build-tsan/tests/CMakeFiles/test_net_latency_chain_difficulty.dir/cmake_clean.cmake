file(REMOVE_RECURSE
  "CMakeFiles/test_net_latency_chain_difficulty.dir/test_net_latency_chain_difficulty.cpp.o"
  "CMakeFiles/test_net_latency_chain_difficulty.dir/test_net_latency_chain_difficulty.cpp.o.d"
  "test_net_latency_chain_difficulty"
  "test_net_latency_chain_difficulty.pdb"
  "test_net_latency_chain_difficulty[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_latency_chain_difficulty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
