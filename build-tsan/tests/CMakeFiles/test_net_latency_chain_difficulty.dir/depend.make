# Empty dependencies file for test_net_latency_chain_difficulty.
# This may be replaced when dependencies are built.
