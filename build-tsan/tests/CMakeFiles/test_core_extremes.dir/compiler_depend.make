# Empty compiler generated dependencies file for test_core_extremes.
# This may be replaced when dependencies are built.
