file(REMOVE_RECURSE
  "CMakeFiles/test_core_extremes.dir/test_core_extremes.cpp.o"
  "CMakeFiles/test_core_extremes.dir/test_core_extremes.cpp.o.d"
  "test_core_extremes"
  "test_core_extremes.pdb"
  "test_core_extremes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_extremes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
