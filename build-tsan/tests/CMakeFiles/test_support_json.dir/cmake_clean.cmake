file(REMOVE_RECURSE
  "CMakeFiles/test_support_json.dir/test_support_json.cpp.o"
  "CMakeFiles/test_support_json.dir/test_support_json.cpp.o.d"
  "test_support_json"
  "test_support_json.pdb"
  "test_support_json[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
