# Empty compiler generated dependencies file for test_core_equilibrium_cache.
# This may be replaced when dependencies are built.
