file(REMOVE_RECURSE
  "CMakeFiles/test_core_equilibrium_cache.dir/test_core_equilibrium_cache.cpp.o"
  "CMakeFiles/test_core_equilibrium_cache.dir/test_core_equilibrium_cache.cpp.o.d"
  "test_core_equilibrium_cache"
  "test_core_equilibrium_cache.pdb"
  "test_core_equilibrium_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_equilibrium_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
