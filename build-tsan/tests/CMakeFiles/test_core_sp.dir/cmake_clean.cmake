file(REMOVE_RECURSE
  "CMakeFiles/test_core_sp.dir/test_core_sp.cpp.o"
  "CMakeFiles/test_core_sp.dir/test_core_sp.cpp.o.d"
  "test_core_sp"
  "test_core_sp.pdb"
  "test_core_sp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_sp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
