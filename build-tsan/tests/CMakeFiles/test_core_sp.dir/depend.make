# Empty dependencies file for test_core_sp.
# This may be replaced when dependencies are built.
