# Empty dependencies file for test_numerics_projection.
# This may be replaced when dependencies are built.
