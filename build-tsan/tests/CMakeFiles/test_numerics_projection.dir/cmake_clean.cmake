file(REMOVE_RECURSE
  "CMakeFiles/test_numerics_projection.dir/test_numerics_projection.cpp.o"
  "CMakeFiles/test_numerics_projection.dir/test_numerics_projection.cpp.o.d"
  "test_numerics_projection"
  "test_numerics_projection.pdb"
  "test_numerics_projection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numerics_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
