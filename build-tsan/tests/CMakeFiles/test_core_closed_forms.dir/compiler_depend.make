# Empty compiler generated dependencies file for test_core_closed_forms.
# This may be replaced when dependencies are built.
