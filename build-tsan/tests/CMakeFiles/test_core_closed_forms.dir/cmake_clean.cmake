file(REMOVE_RECURSE
  "CMakeFiles/test_core_closed_forms.dir/test_core_closed_forms.cpp.o"
  "CMakeFiles/test_core_closed_forms.dir/test_core_closed_forms.cpp.o.d"
  "test_core_closed_forms"
  "test_core_closed_forms.pdb"
  "test_core_closed_forms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_closed_forms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
