file(REMOVE_RECURSE
  "CMakeFiles/test_core_welfare.dir/test_core_welfare.cpp.o"
  "CMakeFiles/test_core_welfare.dir/test_core_welfare.cpp.o.d"
  "test_core_welfare"
  "test_core_welfare.pdb"
  "test_core_welfare[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_welfare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
