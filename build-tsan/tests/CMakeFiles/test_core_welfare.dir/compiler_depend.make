# Empty compiler generated dependencies file for test_core_welfare.
# This may be replaced when dependencies are built.
