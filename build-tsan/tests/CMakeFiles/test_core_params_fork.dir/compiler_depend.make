# Empty compiler generated dependencies file for test_core_params_fork.
# This may be replaced when dependencies are built.
