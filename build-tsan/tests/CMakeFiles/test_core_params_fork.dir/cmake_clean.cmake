file(REMOVE_RECURSE
  "CMakeFiles/test_core_params_fork.dir/test_core_params_fork.cpp.o"
  "CMakeFiles/test_core_params_fork.dir/test_core_params_fork.cpp.o.d"
  "test_core_params_fork"
  "test_core_params_fork.pdb"
  "test_core_params_fork[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_params_fork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
