file(REMOVE_RECURSE
  "CMakeFiles/test_core_sensitivity.dir/test_core_sensitivity.cpp.o"
  "CMakeFiles/test_core_sensitivity.dir/test_core_sensitivity.cpp.o.d"
  "test_core_sensitivity"
  "test_core_sensitivity.pdb"
  "test_core_sensitivity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
