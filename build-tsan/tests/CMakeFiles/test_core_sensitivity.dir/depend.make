# Empty dependencies file for test_core_sensitivity.
# This may be replaced when dependencies are built.
