# Empty dependencies file for test_game_nash.
# This may be replaced when dependencies are built.
