file(REMOVE_RECURSE
  "CMakeFiles/test_game_nash.dir/test_game_nash.cpp.o"
  "CMakeFiles/test_game_nash.dir/test_game_nash.cpp.o.d"
  "test_game_nash"
  "test_game_nash.pdb"
  "test_game_nash[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_game_nash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
