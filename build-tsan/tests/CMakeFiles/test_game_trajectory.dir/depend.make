# Empty dependencies file for test_game_trajectory.
# This may be replaced when dependencies are built.
