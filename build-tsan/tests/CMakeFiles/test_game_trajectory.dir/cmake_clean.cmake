file(REMOVE_RECURSE
  "CMakeFiles/test_game_trajectory.dir/test_game_trajectory.cpp.o"
  "CMakeFiles/test_game_trajectory.dir/test_game_trajectory.cpp.o.d"
  "test_game_trajectory"
  "test_game_trajectory.pdb"
  "test_game_trajectory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_game_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
