file(REMOVE_RECURSE
  "CMakeFiles/test_core_monotonicity.dir/test_core_monotonicity.cpp.o"
  "CMakeFiles/test_core_monotonicity.dir/test_core_monotonicity.cpp.o.d"
  "test_core_monotonicity"
  "test_core_monotonicity.pdb"
  "test_core_monotonicity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_monotonicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
