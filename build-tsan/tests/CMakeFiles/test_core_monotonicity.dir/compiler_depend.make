# Empty compiler generated dependencies file for test_core_monotonicity.
# This may be replaced when dependencies are built.
