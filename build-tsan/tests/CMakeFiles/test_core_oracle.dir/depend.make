# Empty dependencies file for test_core_oracle.
# This may be replaced when dependencies are built.
