file(REMOVE_RECURSE
  "CMakeFiles/test_core_oracle.dir/test_core_oracle.cpp.o"
  "CMakeFiles/test_core_oracle.dir/test_core_oracle.cpp.o.d"
  "test_core_oracle"
  "test_core_oracle.pdb"
  "test_core_oracle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
