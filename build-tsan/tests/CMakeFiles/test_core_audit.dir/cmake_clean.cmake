file(REMOVE_RECURSE
  "CMakeFiles/test_core_audit.dir/test_core_audit.cpp.o"
  "CMakeFiles/test_core_audit.dir/test_core_audit.cpp.o.d"
  "test_core_audit"
  "test_core_audit.pdb"
  "test_core_audit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
