# Empty compiler generated dependencies file for test_core_audit.
# This may be replaced when dependencies are built.
