file(REMOVE_RECURSE
  "CMakeFiles/test_numerics_optimize.dir/test_numerics_optimize.cpp.o"
  "CMakeFiles/test_numerics_optimize.dir/test_numerics_optimize.cpp.o.d"
  "test_numerics_optimize"
  "test_numerics_optimize.pdb"
  "test_numerics_optimize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numerics_optimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
