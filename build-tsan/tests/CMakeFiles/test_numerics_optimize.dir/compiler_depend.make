# Empty compiler generated dependencies file for test_numerics_optimize.
# This may be replaced when dependencies are built.
