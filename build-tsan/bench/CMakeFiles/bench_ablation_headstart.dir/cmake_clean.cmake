file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_headstart.dir/bench_ablation_headstart.cpp.o"
  "CMakeFiles/bench_ablation_headstart.dir/bench_ablation_headstart.cpp.o.d"
  "bench_ablation_headstart"
  "bench_ablation_headstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_headstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
