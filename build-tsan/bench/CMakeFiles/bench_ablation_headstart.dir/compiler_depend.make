# Empty compiler generated dependencies file for bench_ablation_headstart.
# This may be replaced when dependencies are built.
