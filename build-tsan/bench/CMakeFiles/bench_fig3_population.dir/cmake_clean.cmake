file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_population.dir/bench_fig3_population.cpp.o"
  "CMakeFiles/bench_fig3_population.dir/bench_fig3_population.cpp.o.d"
  "bench_fig3_population"
  "bench_fig3_population.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
