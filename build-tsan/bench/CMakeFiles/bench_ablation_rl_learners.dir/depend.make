# Empty dependencies file for bench_ablation_rl_learners.
# This may be replaced when dependencies are built.
