file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rl_learners.dir/bench_ablation_rl_learners.cpp.o"
  "CMakeFiles/bench_ablation_rl_learners.dir/bench_ablation_rl_learners.cpp.o.d"
  "bench_ablation_rl_learners"
  "bench_ablation_rl_learners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rl_learners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
