# Empty dependencies file for bench_fig2_fork_model.
# This may be replaced when dependencies are built.
