# Empty dependencies file for bench_ablation_population_models.
# This may be replaced when dependencies are built.
