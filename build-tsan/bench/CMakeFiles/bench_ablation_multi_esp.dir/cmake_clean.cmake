file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multi_esp.dir/bench_ablation_multi_esp.cpp.o"
  "CMakeFiles/bench_ablation_multi_esp.dir/bench_ablation_multi_esp.cpp.o.d"
  "bench_ablation_multi_esp"
  "bench_ablation_multi_esp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multi_esp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
