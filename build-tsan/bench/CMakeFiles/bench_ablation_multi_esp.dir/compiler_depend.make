# Empty compiler generated dependencies file for bench_ablation_multi_esp.
# This may be replaced when dependencies are built.
