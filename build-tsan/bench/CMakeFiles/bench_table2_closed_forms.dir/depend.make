# Empty dependencies file for bench_table2_closed_forms.
# This may be replaced when dependencies are built.
