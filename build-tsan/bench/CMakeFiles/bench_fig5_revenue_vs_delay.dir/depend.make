# Empty dependencies file for bench_fig5_revenue_vs_delay.
# This may be replaced when dependencies are built.
