file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_revenue_vs_delay.dir/bench_fig5_revenue_vs_delay.cpp.o"
  "CMakeFiles/bench_fig5_revenue_vs_delay.dir/bench_fig5_revenue_vs_delay.cpp.o.d"
  "bench_fig5_revenue_vs_delay"
  "bench_fig5_revenue_vs_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_revenue_vs_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
