# Empty dependencies file for bench_ablation_transfer_leak.
# This may be replaced when dependencies are built.
