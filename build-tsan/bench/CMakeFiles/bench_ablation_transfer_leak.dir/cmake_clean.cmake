file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_transfer_leak.dir/bench_ablation_transfer_leak.cpp.o"
  "CMakeFiles/bench_ablation_transfer_leak.dir/bench_ablation_transfer_leak.cpp.o.d"
  "bench_ablation_transfer_leak"
  "bench_ablation_transfer_leak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_transfer_leak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
