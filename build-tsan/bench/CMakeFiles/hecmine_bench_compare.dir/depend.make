# Empty dependencies file for hecmine_bench_compare.
# This may be replaced when dependencies are built.
