file(REMOVE_RECURSE
  "libhecmine_bench_compare.a"
)
