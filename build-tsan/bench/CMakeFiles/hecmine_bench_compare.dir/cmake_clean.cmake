file(REMOVE_RECURSE
  "CMakeFiles/hecmine_bench_compare.dir/compare.cpp.o"
  "CMakeFiles/hecmine_bench_compare.dir/compare.cpp.o.d"
  "libhecmine_bench_compare.a"
  "libhecmine_bench_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hecmine_bench_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
