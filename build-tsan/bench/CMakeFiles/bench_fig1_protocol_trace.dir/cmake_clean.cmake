file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_protocol_trace.dir/bench_fig1_protocol_trace.cpp.o"
  "CMakeFiles/bench_fig1_protocol_trace.dir/bench_fig1_protocol_trace.cpp.o.d"
  "bench_fig1_protocol_trace"
  "bench_fig1_protocol_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_protocol_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
