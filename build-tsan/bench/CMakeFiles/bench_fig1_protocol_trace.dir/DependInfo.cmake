
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig1_protocol_trace.cpp" "bench/CMakeFiles/bench_fig1_protocol_trace.dir/bench_fig1_protocol_trace.cpp.o" "gcc" "bench/CMakeFiles/bench_fig1_protocol_trace.dir/bench_fig1_protocol_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/rl/CMakeFiles/hecmine_rl.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/hecmine_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/hecmine_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/chain/CMakeFiles/hecmine_chain.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/hecmine_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/game/CMakeFiles/hecmine_game.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/numerics/CMakeFiles/hecmine_numerics.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/hecmine_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
