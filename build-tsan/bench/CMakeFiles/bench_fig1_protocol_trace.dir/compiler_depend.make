# Empty compiler generated dependencies file for bench_fig1_protocol_trace.
# This may be replaced when dependencies are built.
