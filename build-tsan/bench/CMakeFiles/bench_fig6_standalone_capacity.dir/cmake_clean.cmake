file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_standalone_capacity.dir/bench_fig6_standalone_capacity.cpp.o"
  "CMakeFiles/bench_fig6_standalone_capacity.dir/bench_fig6_standalone_capacity.cpp.o.d"
  "bench_fig6_standalone_capacity"
  "bench_fig6_standalone_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_standalone_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
