# Empty dependencies file for bench_fig6_standalone_capacity.
# This may be replaced when dependencies are built.
