file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_solvers.dir/bench_micro_solvers.cpp.o"
  "CMakeFiles/bench_micro_solvers.dir/bench_micro_solvers.cpp.o.d"
  "bench_micro_solvers"
  "bench_micro_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
