# Empty compiler generated dependencies file for bench_micro_solvers.
# This may be replaced when dependencies are built.
