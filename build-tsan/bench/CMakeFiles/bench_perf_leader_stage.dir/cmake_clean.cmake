file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_leader_stage.dir/bench_perf_leader_stage.cpp.o"
  "CMakeFiles/bench_perf_leader_stage.dir/bench_perf_leader_stage.cpp.o.d"
  "bench_perf_leader_stage"
  "bench_perf_leader_stage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_leader_stage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
