# Empty compiler generated dependencies file for bench_perf_leader_stage.
# This may be replaced when dependencies are built.
