# Empty dependencies file for bench_ablation_welfare_modes.
# This may be replaced when dependencies are built.
