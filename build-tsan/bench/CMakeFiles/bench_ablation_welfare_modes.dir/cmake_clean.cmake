file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_welfare_modes.dir/bench_ablation_welfare_modes.cpp.o"
  "CMakeFiles/bench_ablation_welfare_modes.dir/bench_ablation_welfare_modes.cpp.o.d"
  "bench_ablation_welfare_modes"
  "bench_ablation_welfare_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_welfare_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
