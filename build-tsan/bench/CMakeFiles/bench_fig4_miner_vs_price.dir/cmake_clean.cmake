file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_miner_vs_price.dir/bench_fig4_miner_vs_price.cpp.o"
  "CMakeFiles/bench_fig4_miner_vs_price.dir/bench_fig4_miner_vs_price.cpp.o.d"
  "bench_fig4_miner_vs_price"
  "bench_fig4_miner_vs_price.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_miner_vs_price.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
