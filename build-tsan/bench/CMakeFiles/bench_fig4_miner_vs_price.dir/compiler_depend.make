# Empty compiler generated dependencies file for bench_fig4_miner_vs_price.
# This may be replaced when dependencies are built.
