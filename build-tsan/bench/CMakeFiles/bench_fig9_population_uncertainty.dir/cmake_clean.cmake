file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_population_uncertainty.dir/bench_fig9_population_uncertainty.cpp.o"
  "CMakeFiles/bench_fig9_population_uncertainty.dir/bench_fig9_population_uncertainty.cpp.o.d"
  "bench_fig9_population_uncertainty"
  "bench_fig9_population_uncertainty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_population_uncertainty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
