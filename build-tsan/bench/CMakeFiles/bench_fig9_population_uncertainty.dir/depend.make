# Empty dependencies file for bench_fig9_population_uncertainty.
# This may be replaced when dependencies are built.
