# Empty dependencies file for bench_fig8_price_equilibrium.
# This may be replaced when dependencies are built.
