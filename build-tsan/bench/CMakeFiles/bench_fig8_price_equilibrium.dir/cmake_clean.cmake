file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_price_equilibrium.dir/bench_fig8_price_equilibrium.cpp.o"
  "CMakeFiles/bench_fig8_price_equilibrium.dir/bench_fig8_price_equilibrium.cpp.o.d"
  "bench_fig8_price_equilibrium"
  "bench_fig8_price_equilibrium.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_price_equilibrium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
