file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_solvers.dir/bench_ablation_solvers.cpp.o"
  "CMakeFiles/bench_ablation_solvers.dir/bench_ablation_solvers.cpp.o.d"
  "bench_ablation_solvers"
  "bench_ablation_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
