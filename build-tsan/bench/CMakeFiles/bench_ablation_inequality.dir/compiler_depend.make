# Empty compiler generated dependencies file for bench_ablation_inequality.
# This may be replaced when dependencies are built.
