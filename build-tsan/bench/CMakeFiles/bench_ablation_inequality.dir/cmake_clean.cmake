file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_inequality.dir/bench_ablation_inequality.cpp.o"
  "CMakeFiles/bench_ablation_inequality.dir/bench_ablation_inequality.cpp.o.d"
  "bench_ablation_inequality"
  "bench_ablation_inequality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_inequality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
