# Empty compiler generated dependencies file for permissioned_consortium.
# This may be replaced when dependencies are built.
