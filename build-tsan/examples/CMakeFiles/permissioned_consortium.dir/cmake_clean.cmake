file(REMOVE_RECURSE
  "CMakeFiles/permissioned_consortium.dir/permissioned_consortium.cpp.o"
  "CMakeFiles/permissioned_consortium.dir/permissioned_consortium.cpp.o.d"
  "permissioned_consortium"
  "permissioned_consortium.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/permissioned_consortium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
