# Empty compiler generated dependencies file for mining_income_risk.
# This may be replaced when dependencies are built.
