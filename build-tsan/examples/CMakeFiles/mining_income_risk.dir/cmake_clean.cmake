file(REMOVE_RECURSE
  "CMakeFiles/mining_income_risk.dir/mining_income_risk.cpp.o"
  "CMakeFiles/mining_income_risk.dir/mining_income_risk.cpp.o.d"
  "mining_income_risk"
  "mining_income_risk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mining_income_risk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
