# Empty compiler generated dependencies file for hecmine_cli.
# This may be replaced when dependencies are built.
