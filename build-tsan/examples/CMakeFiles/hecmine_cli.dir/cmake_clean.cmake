file(REMOVE_RECURSE
  "CMakeFiles/hecmine_cli.dir/hecmine_cli.cpp.o"
  "CMakeFiles/hecmine_cli.dir/hecmine_cli.cpp.o.d"
  "hecmine_cli"
  "hecmine_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hecmine_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
