file(REMOVE_RECURSE
  "CMakeFiles/permissionless_market.dir/permissionless_market.cpp.o"
  "CMakeFiles/permissionless_market.dir/permissionless_market.cpp.o.d"
  "permissionless_market"
  "permissionless_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/permissionless_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
