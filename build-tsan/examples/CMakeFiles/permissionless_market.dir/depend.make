# Empty dependencies file for permissionless_market.
# This may be replaced when dependencies are built.
