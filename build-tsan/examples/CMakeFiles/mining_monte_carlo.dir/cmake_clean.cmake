file(REMOVE_RECURSE
  "CMakeFiles/mining_monte_carlo.dir/mining_monte_carlo.cpp.o"
  "CMakeFiles/mining_monte_carlo.dir/mining_monte_carlo.cpp.o.d"
  "mining_monte_carlo"
  "mining_monte_carlo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mining_monte_carlo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
