# Empty compiler generated dependencies file for mining_monte_carlo.
# This may be replaced when dependencies are built.
