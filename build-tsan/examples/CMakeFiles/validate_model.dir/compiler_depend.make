# Empty compiler generated dependencies file for validate_model.
# This may be replaced when dependencies are built.
