file(REMOVE_RECURSE
  "CMakeFiles/validate_model.dir/validate_model.cpp.o"
  "CMakeFiles/validate_model.dir/validate_model.cpp.o.d"
  "validate_model"
  "validate_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
