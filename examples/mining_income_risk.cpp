// Income-risk view of equilibrium mining (extension): the game layer gives
// expected utilities, but a miner lives one sample path. This example runs
// long campaigns at the equilibrium strategies and reports the income
// process — reward volatility, realized decentralization, and what the
// difficulty controller does to block intervals as the population churns.
//
//   $ ./mining_income_risk [--blocks=20000] [--mu=4] [--stddev=1]
#include <cmath>
#include <cstdio>

#include "core/decentralization.hpp"
#include "net/campaign.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace hecmine;
  const support::CliArgs args(argc, argv);

  core::NetworkParams params;
  params.reward = 100.0;
  params.fork_rate = 0.2;
  params.edge_success = 0.9;
  params.edge_capacity = 10.0;
  const core::Prices prices{2.0, 1.0};
  const std::vector<double> budgets{10.0, 14.0, 18.0, 40.0};

  // Campaign with population churn and difficulty retargeting.
  net::CampaignConfig campaign;
  campaign.params = params;
  campaign.policy = {core::EdgeMode::kConnected, params.edge_success,
                     params.edge_capacity};
  campaign.prices = prices;
  // Truncate the population law to the fixed consortium size.
  campaign.population = core::PopulationModel(
      args.get("mu", 4.0), args.get("stddev", 1.0), 1,
      static_cast<int>(budgets.size()));
  campaign.difficulty.target_interval = 1.0;
  campaign.difficulty.window = 32;
  campaign.blocks = static_cast<std::size_t>(args.get("blocks", 20000));
  // Equilibrium strategies for the fixed miner set, solved through the
  // follower oracle and fed straight into the campaign.
  const auto outcome = net::run_campaign_at_equilibrium(campaign, budgets, 2027);
  const auto& equilibrium = outcome.equilibrium;
  std::printf("equilibrium requests (connected mode):\n");
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    std::printf("  miner %zu (B=%4.0f): e=%.3f c=%.3f  E[U]=%.3f\n", i,
                budgets[i], equilibrium.request(i).edge,
                equilibrium.request(i).cloud, equilibrium.utility(i));
  }
  const auto& result = outcome.result;

  std::printf("\ncampaign over %zu blocks (population mu=%.1f):\n",
              campaign.blocks, campaign.population->mean());
  for (std::size_t i = 0; i < result.miners.size(); ++i) {
    const auto& miner = result.miners[i];
    const double mean_u = miner.round_utility.mean();
    const double sd_u = miner.round_utility.stddev();
    std::printf("  miner %zu: active %5zu rounds, %4zu wins, net %9.1f, "
                "per-round U %6.3f +/- %6.2f (CV %4.1fx)\n",
                i, miner.rounds_active, miner.wins, miner.net(), mean_u,
                sd_u, sd_u / std::max(std::abs(mean_u), 1e-9));
  }
  std::printf("\nchain health: %zu blocks, fork rate %.4f, mean interval "
              "%.3f (target %.1f, %zu retargets, final rate %.3f)\n",
              result.blocks_mined,
              static_cast<double>(result.forks) /
                  static_cast<double>(result.blocks_mined),
              result.block_intervals.mean(),
              campaign.difficulty.target_interval, result.retargets,
              result.final_unit_rate);
  std::printf("realized decentralization: HHI %.4f (effective miners "
              "%.2f)\n",
              result.realized_hhi, 1.0 / result.realized_hhi);
  std::printf("\nTakeaway: per-round utility noise is several times its "
              "mean (see the CV column) — the economic reason real miners "
              "join pools.\n");
  return 0;
}
