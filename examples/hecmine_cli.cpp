// hecmine_cli — scenario-file driver for the full library.
//
//   hecmine_cli solve    <scenario-file>             equilibrium + welfare
//   hecmine_cli simulate <scenario-file> [--rounds=N]  replay on the simulator
//   hecmine_cli dynamic  <scenario-file>             Sec. V uncertainty view
//   hecmine_cli campaign <scenario-file> [--blocks=N]  equilibrium campaign
//
// Scenario files are flat key=value text; see examples/scenarios/ and
// core/scenario.hpp for the schema.
//
// --threads=N (or the HECMINE_THREADS environment variable) controls how
// many threads the SP-stage price scans use; 0 (the default) picks the
// hardware concurrency. Results are bitwise identical across thread counts.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <utility>

#include "chain/blocklog.hpp"
#include "core/audit.hpp"
#include "core/equilibrium_cache.hpp"
#include "core/dynamic.hpp"
#include "core/oracle.hpp"
#include "core/scenario.hpp"
#include "core/solve_context.hpp"
#include "core/sp.hpp"
#include "core/welfare.hpp"
#include "net/campaign.hpp"
#include "net/campaign_monitor.hpp"
#include "net/network.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/health.hpp"
#include "support/openmetrics.hpp"
#include "support/parallel.hpp"
#include "support/provenance.hpp"
#include "support/telemetry.hpp"

namespace {

using namespace hecmine;

struct SolvedScenario {
  core::Prices prices;
  core::EquilibriumProfile followers;
};

/// Solves the scenario's follower stage (and, without fixed prices, the
/// leader stage first), everything routed through the follower-oracle
/// layer. The caller's SolveContext carries the thread count for the
/// SP-stage price scans, the cache that memoizes repeated follower solves
/// (owned by main so its stats survive the solve), and the optional
/// telemetry sink.
SolvedScenario solve_scenario(const core::Scenario& scenario,
                              const core::SolveContext& context) {
  SolvedScenario solved;
  if (scenario.fixed_prices) {
    solved.prices = *scenario.fixed_prices;
  } else {
    HECMINE_REQUIRE(scenario.homogeneous(),
                    "SP-stage solve requires homogeneous budgets; set "
                    "price_edge/price_cloud for heterogeneous scenarios");
    core::SpSolveOptions options;
    options.context = context;
    const auto sp = core::solve_leader_stage_homogeneous(
        scenario.params, scenario.budgets.front(), scenario.miners(),
        scenario.mode, options);
    solved.prices = sp.prices;
  }
  solved.followers = core::solve_followers(
      scenario.params, solved.prices, scenario.budgets, scenario.mode, context);
  return solved;
}

int cmd_solve(const core::Scenario& scenario,
              const core::SolveContext& context, bool audit,
              double audit_tol) {
  const auto solved = solve_scenario(scenario, context);
  std::printf("prices: P_e=%.4f P_c=%.4f%s\n", solved.prices.edge,
              solved.prices.cloud,
              scenario.fixed_prices ? " (fixed by scenario)" : " (SP stage)");
  for (std::size_t i = 0; i < scenario.budgets.size(); ++i) {
    std::printf("miner %zu (B=%6.1f): e=%8.4f c=%8.4f U=%8.4f\n", i,
                scenario.budgets[i], solved.followers.request(i).edge,
                solved.followers.request(i).cloud,
                solved.followers.utility(i));
  }
  std::printf("totals: E=%.4f C=%.4f", solved.followers.totals.edge,
              solved.followers.totals.cloud);
  if (scenario.mode == core::EdgeMode::kStandalone) {
    std::printf("  (surcharge mu=%.4f, cap %s)",
                solved.followers.surcharge,
                solved.followers.cap_active ? "ACTIVE" : "slack");
  }
  std::printf("\n");
  const auto welfare =
      core::welfare_report(scenario.params, solved.prices, solved.followers);
  std::printf("welfare: miner surplus %.3f | SP profit %.3f (edge %.3f, "
              "cloud %.3f) | dissipation %.1f%%\n",
              welfare.miner_surplus, welfare.sp_profit(),
              welfare.sp_profit_edge, welfare.sp_profit_cloud,
              100.0 * welfare.dissipation);
  if (audit) {
    core::AuditOptions options;
    options.context = context;
    const core::AuditReport report =
        core::audit_equilibrium(scenario, solved.prices, solved.followers,
                                options);
    core::print_audit(std::cout, report);
    if (context.telemetry != nullptr)
      core::record_audit(*context.telemetry, report);
    // Scriptable gate: any follower-side certificate beyond the tolerance
    // fails the run, so CI can assert on audit quality directly.
    const double worst = core::worst_violation(report);
    if (worst > audit_tol) {
      std::fprintf(stderr,
                   "audit FAILED: worst follower-side violation %.3e exceeds "
                   "tolerance %.3e (--audit-tol)\n",
                   worst, audit_tol);
      return 4;
    }
    std::printf("audit OK: worst follower-side violation %.3e <= %.3e\n",
                worst, audit_tol);
  }
  return 0;
}

int cmd_campaign(const core::Scenario& scenario, std::size_t blocks,
                 std::uint64_t seed, double misprice_edge,
                 const core::SolveContext& context,
                 chain::BlockLogWriter* block_log,
                 net::CampaignMonitor* monitor) {
  HECMINE_REQUIRE(scenario.fixed_prices.has_value(),
                  "campaign command requires fixed prices in the scenario");
  net::CampaignConfig config;
  config.params = scenario.params;
  config.policy.mode = scenario.mode;
  config.policy.success_prob = scenario.params.edge_success;
  config.policy.capacity = scenario.params.edge_capacity;
  config.prices = *scenario.fixed_prices;
  config.population = scenario.population;
  config.blocks = blocks;
  config.telemetry = context.telemetry;
  config.block_log = block_log;
  config.monitor = monitor;
  // The campaign draws the active subset from the population support, so
  // the strategy pool must cover max_miners — pad the budget pool with the
  // scenario's last budget (the trainer uses the same convention).
  std::vector<double> budgets = scenario.budgets;
  if (scenario.population) {
    const auto pool =
        static_cast<std::size_t>(scenario.population->max_miners());
    if (budgets.size() < pool) budgets.resize(pool, budgets.back());
  }
  net::CampaignResult result;
  if (misprice_edge != 1.0) {
    // Drift-injection mode: the auditor's reference stays the equilibrium
    // at the scenario prices, but the miners play the equilibrium of a
    // campaign whose edge price was scaled by the factor — a controlled
    // convergence failure for exercising the campaign drift watchdog.
    const bool connected = scenario.mode == core::EdgeMode::kConnected;
    const double edge_success = connected ? scenario.params.edge_success : 1.0;
    const auto reference = core::solve_followers(
        scenario.params, config.prices, budgets, scenario.mode, context);
    const std::vector<core::MinerRequest> audited = reference.expanded();
    if (monitor != nullptr && !monitor->has_reference())
      monitor->set_reference(audited, scenario.mode,
                             scenario.params.fork_rate, edge_success);
    if (block_log != nullptr) {
      std::vector<chain::Allocation> requests(audited.size());
      for (std::size_t i = 0; i < audited.size(); ++i)
        requests[i] = chain::Allocation{audited[i].edge, audited[i].cloud};
      block_log->write_reference(connected ? "connected" : "standalone",
                                 scenario.params.fork_rate, edge_success,
                                 requests);
    }
    core::Prices played_prices = config.prices;
    played_prices.edge *= misprice_edge;
    const auto played = core::solve_followers(
        scenario.params, played_prices, budgets, scenario.mode, context);
    std::printf("campaign: playing the P_e=%.4f equilibrium against the "
                "P_e=%.4f reference (--misprice-edge=%.3f)\n",
                played_prices.edge, config.prices.edge, misprice_edge);
    result = net::run_campaign(config, played.expanded(), seed);
  } else {
    result =
        net::run_campaign_at_equilibrium(config, budgets, seed, context).result;
  }
  std::printf("campaign: %zu blocks at P_e=%.4f P_c=%.4f "
              "(transfers=%zu rejections=%zu forks=%zu)\n",
              result.blocks_mined, config.prices.edge, config.prices.cloud,
              result.transfers, result.rejections, result.forks);
  std::printf("block intervals: mean %.3f (n=%zu), %zu retargets, final unit "
              "rate %.4f\n",
              result.block_intervals.mean(), result.block_intervals.count(),
              result.retargets, result.final_unit_rate);
  std::printf("realized HHI %.4f over %zu miners\n", result.realized_hhi,
              result.miners.size());
  if (monitor != nullptr) {
    std::printf("campaign drift: max |z| %.3f vs reference (sampler %.3f, "
                "fork %.3f), %llu incidents\n",
                monitor->max_drift_z(), monitor->max_sampler_z(),
                monitor->fork_z(),
                static_cast<unsigned long long>(monitor->incidents()));
  }
  return 0;
}

int cmd_simulate(const core::Scenario& scenario, std::size_t rounds,
                 const core::SolveContext& context) {
  const auto solved = solve_scenario(scenario, context);
  net::EdgePolicy policy;
  policy.mode = scenario.mode;
  policy.success_prob = scenario.params.edge_success;
  policy.capacity = scenario.params.edge_capacity;
  net::MiningNetwork network(scenario.params, policy, solved.prices, 97);
  auto profile = solved.followers.expanded();
  if (scenario.mode == core::EdgeMode::kStandalone) {
    const double total_edge = solved.followers.totals.edge;
    if (total_edge > scenario.params.edge_capacity * (1.0 - 1e-9)) {
      const double shrink =
          scenario.params.edge_capacity * (1.0 - 1e-9) / total_edge;
      for (auto& request : profile) request.edge *= shrink;
    }
  }
  network.run_rounds(profile, rounds);
  std::printf("%zu rounds simulated (transfers=%zu rejections=%zu)\n",
              rounds, network.stats().transfers, network.stats().rejections);
  for (std::size_t i = 0; i < profile.size(); ++i) {
    std::printf("miner %zu: wins=%6zu (rate %.4f)  mean utility %8.4f "
                "(model %8.4f)\n",
                i, network.stats().wins[i],
                static_cast<double>(network.stats().wins[i]) /
                    static_cast<double>(rounds),
                network.stats().utility[i].mean(),
                solved.followers.utility(i));
  }
  std::printf("SP revenue/round: edge %.3f cloud %.3f; ledger height %zu, "
              "fork fraction %.4f\n",
              network.stats().revenue_edge / static_cast<double>(rounds),
              network.stats().revenue_cloud / static_cast<double>(rounds),
              network.ledger().height(), network.ledger().fork_fraction());
  return 0;
}

int cmd_dynamic(const core::Scenario& scenario) {
  HECMINE_REQUIRE(scenario.population.has_value(),
                  "dynamic command requires population_mean in the scenario");
  HECMINE_REQUIRE(scenario.fixed_prices.has_value(),
                  "dynamic command requires fixed prices in the scenario");
  HECMINE_REQUIRE(scenario.homogeneous(),
                  "dynamic command requires homogeneous budgets");
  core::DynamicGameConfig config;
  config.params = scenario.params;
  config.prices = *scenario.fixed_prices;
  config.budget = scenario.budgets.front();
  config.edge_success = scenario.edge_success_dynamic;
  const auto& population = *scenario.population;
  const auto dynamic = core::solve_dynamic_symmetric(config, population);
  const auto fixed = core::fixed_population_benchmark(config, population);
  std::printf("population: mean %.2f variance %.2f on [%d, %d]\n",
              population.mean(), population.variance(),
              population.min_miners(), population.max_miners());
  std::printf("dynamic equilibrium: e*=%.4f c*=%.4f (converged=%d)\n",
              dynamic.request.edge, dynamic.request.cloud,
              dynamic.converged ? 1 : 0);
  std::printf("fixed-N benchmark:  e*=%.4f c*=%.4f\n", fixed.edge,
              fixed.cloud);
  std::printf("uncertainty premium on e*: %+.2f%%\n",
              100.0 * (dynamic.request.edge / fixed.edge - 1.0));
  std::printf("expected total edge demand %.3f vs capacity %.1f -> %s\n",
              dynamic.expected_total_edge, scenario.params.edge_capacity,
              dynamic.exceeds_capacity ? "EXCEEDS E_max" : "within E_max");
  return 0;
}

/// `--version`: the run-provenance manifest fields, human-readable.
int cmd_version() {
  const support::provenance::RunManifest manifest =
      support::provenance::collect();
  std::printf("hecmine %s\n", manifest.git_sha.c_str());
  std::printf("build: %s, %s%s%s\n", manifest.build_type.c_str(),
              manifest.compiler.c_str(),
              manifest.sanitizer.empty() ? "" : ", sanitizer=",
              manifest.sanitizer.c_str());
  std::printf("host: %s (%s, %d hardware threads)\n", manifest.host.c_str(),
              manifest.os.c_str(), manifest.hardware_concurrency);
  for (const auto& schema : support::provenance::schema_versions())
    std::printf("schema %s: %s\n", schema.artifact, schema.version);
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: hecmine_cli <solve|simulate|dynamic|campaign> <scenario-file> "
      "[--rounds=N] [--blocks=N] [--threads=N] [--log-level=L]\n"
      "                   [--telemetry-out=FILE] [--iteration-log=FILE]\n"
      "                   [--trace-out=FILE] [--metrics-out=FILE]\n"
      "                   [--flight-out=FILE] [--flight-interval-ms=N]\n"
      "                   [--block-log=FILE] [--block-log-stride=N]\n"
      "                   [--drift-z=Z] [--misprice-edge=F]\n"
      "                   [--health=off|observe|warn|abort]\n"
      "                   [--audit] [--audit-tol=T]\n"
      "       hecmine_cli --version\n"
      "  --threads=N          threads for the SP-stage price scans; 0 (the\n"
      "                       default) uses all hardware threads. The\n"
      "                       HECMINE_THREADS environment variable provides\n"
      "                       the same override when --threads is absent.\n"
      "                       Results are identical for every thread count.\n"
      "  --log-level=L        debug|info|warn|error (default info); the\n"
      "                       HECMINE_LOG_LEVEL environment variable is the\n"
      "                       fallback when the flag is absent.\n"
      "  --telemetry-out=F    write a JSON telemetry profile (solver\n"
      "                       counters, cache stats, solve trace) to F and\n"
      "                       print the summary tables; HECMINE_TELEMETRY is\n"
      "                       the fallback. Empty/absent = telemetry off.\n"
      "  --iteration-log=F    stream one JSONL record per solver iteration\n"
      "                       (schema hecmine.iterlog.v1: residual, prices,\n"
      "                       aggregates, step, constraint flags) to F;\n"
      "                       HECMINE_ITERLOG is the fallback.\n"
      "  --trace-out=F        write the solve timeline as Chrome Trace Event\n"
      "                       JSON (schema hecmine.trace.v1, loadable in\n"
      "                       Perfetto / chrome://tracing) to F;\n"
      "                       HECMINE_TRACE_OUT is the fallback.\n"
      "  --flight-out=F       flight recorder: snapshot all counters/gauges/\n"
      "                       histograms to a rotating JSONL stream at F\n"
      "                       every --flight-interval-ms (default 500) while\n"
      "                       the run is in progress; HECMINE_FLIGHT_OUT /\n"
      "                       HECMINE_FLIGHT_INTERVAL_MS are the fallbacks.\n"
      "  --metrics-out=F      write the metrics registry + work counters +\n"
      "                       health gauges as an OpenMetrics/Prometheus\n"
      "                       text snapshot to F; HECMINE_METRICS_OUT is the\n"
      "                       fallback. Empty/absent = metrics export off.\n"
      "  --health=A           solver health watchdog policy when a telemetry\n"
      "                       sink is attached: off, observe (gauges/events\n"
      "                       only), warn (default; log each incident), or\n"
      "                       abort (throw a typed error on divergence);\n"
      "                       HECMINE_HEALTH is the fallback.\n"
      "  --block-log=F        stream one hecmine.blocklog.v1 JSONL record\n"
      "                       per simulated block (winner, fork outcome,\n"
      "                       difficulty, interval, hash shares) to F\n"
      "                       during the campaign command; HECMINE_BLOCK_LOG\n"
      "                       is the fallback. Replay with\n"
      "                       hecmine_campaign_report.\n"
      "  --block-log-stride=N log every N-th block only (default 1).\n"
      "  --drift-z=Z          campaign drift threshold in standard\n"
      "                       deviations (default 4): the campaign monitor\n"
      "                       raises a hecmine.health.v1 incident when an\n"
      "                       empirical win rate drifts beyond Z sigma of\n"
      "                       the reference equilibrium W_i, escalated per\n"
      "                       --health (abort exits 5).\n"
      "  --misprice-edge=F    drift-injection knob (campaign command): play\n"
      "                       the equilibrium of an edge price scaled by F\n"
      "                       while auditing against the scenario-price\n"
      "                       equilibrium. F != 1 makes a healthy campaign\n"
      "                       mis-converge by construction (default 1).\n"
      "  --blocks=N           campaign length in blocks (campaign command,\n"
      "                       default 1000).\n"
      "  --campaign-seed=N    campaign RNG seed (campaign command, default\n"
      "                       97).\n"
      "  --version            print the run-provenance manifest fields (git\n"
      "                       sha, build type, compiler, schema versions).\n"
      "  --audit              audit the solved equilibrium (solve command):\n"
      "                       best-response gap, budget slack, capacity\n"
      "                       violation, Theorem-2 uniqueness check, leader\n"
      "                       optimality gap. Exits 4 when the worst\n"
      "                       follower-side violation exceeds --audit-tol\n"
      "                       (default 1e-6).\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const support::CliArgs args(argc, argv);
  if (args.has("version")) return cmd_version();
  if (args.positional().size() < 2) return usage();
  const std::string command = args.positional()[0];
  const std::string path = args.positional()[1];
  try {
    args.apply_log_level();
    const core::Scenario scenario = core::load_scenario(path);
    const std::string telemetry_path = args.telemetry_out();
    const std::string iteration_log_path = args.iteration_log();
    const std::string trace_path = args.trace_out();
    const std::string flight_path = args.flight_out();
    const std::string metrics_path = args.metrics_out();
    const std::string block_log_path = args.block_log();
    const std::string health_policy = args.health();
    const bool audit = args.has("audit");
    const double audit_tol = args.get("audit-tol", 1e-6);
    support::Telemetry telemetry;
    core::FollowerEquilibriumCache cache;
    core::SolveContext context;
    context.threads = args.threads();
    context.cache = &cache;
    // A sink is attached whenever any consumer needs it: a telemetry JSON
    // path, a streaming iteration log, a trace timeline, a flight
    // recorder, an OpenMetrics snapshot, a block log, or audit gauges.
    context.telemetry = telemetry_path.empty() && iteration_log_path.empty() &&
                                trace_path.empty() && flight_path.empty() &&
                                metrics_path.empty() &&
                                block_log_path.empty() && !audit
                            ? nullptr
                            : &telemetry;
    // Stamp the run half of the provenance manifest before any export or
    // stream header embeds it.
    telemetry.manifest = support::provenance::collect(
        support::resolve_thread_count(context.threads), context.rng_root,
        argc, argv);
    if (!iteration_log_path.empty())
      telemetry.probe.stream_to(iteration_log_path, &telemetry.manifest);
    // Health monitoring is on by default whenever a sink is attached
    // (--health=off disables it). Declared before the flusher so the
    // flusher — whose event drain reads the monitor — is destroyed first
    // on every path, including typed-error unwinds.
    std::optional<support::health::HealthMonitor> health_monitor;
    if (context.telemetry != nullptr && health_policy != "off") {
      support::health::HealthOptions health_options;
      health_options.action =
          support::health::parse_watchdog_action(health_policy);
      health_monitor.emplace(telemetry, health_options);
    }
    // The campaign command always carries its statistics monitor: the
    // campaign.* gauges and the equilibrium drift watchdog. --health=off
    // demotes the watchdog to observe (gauges and retained events only);
    // any other policy escalates drift incidents exactly like solver
    // divergence, so --health=abort exits 5 on a mis-converged campaign.
    std::optional<chain::BlockLogWriter> block_log;
    if (command == "campaign" && !block_log_path.empty()) {
      chain::BlockLogWriter::Options log_options;
      log_options.stride =
          static_cast<std::size_t>(args.positive_int("block-log-stride", 1));
      block_log.emplace(block_log_path, &telemetry.manifest, log_options);
    }
    std::optional<net::CampaignMonitor> campaign_monitor;
    if (command == "campaign") {
      net::CampaignMonitorOptions monitor_options;
      monitor_options.drift_z = args.positive_double("drift-z", 4.0);
      monitor_options.action =
          health_policy == "off"
              ? support::health::WatchdogAction::kObserve
              : support::health::parse_watchdog_action(health_policy);
      campaign_monitor.emplace(telemetry, monitor_options);
    }
    std::optional<support::TelemetryFlusher> flusher;
    if (!flight_path.empty()) {
      support::TelemetryFlusher::Options options;
      options.interval = std::chrono::milliseconds(args.flight_interval_ms());
      flusher.emplace(telemetry, flight_path, options);
      if (health_monitor || campaign_monitor)
        flusher->set_event_drain([&health_monitor, &campaign_monitor] {
          std::vector<std::string> lines;
          if (health_monitor) lines = health_monitor->drain_event_lines();
          if (campaign_monitor) {
            auto extra = campaign_monitor->drain_event_lines();
            for (auto& line : extra) lines.push_back(std::move(line));
          }
          return lines;
        });
    }

    int status = 2;
    if (command == "solve") {
      status = cmd_solve(scenario, context, audit, audit_tol);
    } else if (command == "simulate") {
      status = cmd_simulate(
          scenario,
          static_cast<std::size_t>(args.positive_int("rounds", 20000)),
          context);
    } else if (command == "dynamic") {
      status = cmd_dynamic(scenario);
    } else if (command == "campaign") {
      status = cmd_campaign(
          scenario, static_cast<std::size_t>(args.positive_int("blocks", 1000)),
          static_cast<std::uint64_t>(args.get("campaign-seed", 97)),
          args.positive_double("misprice-edge", 1.0), context,
          block_log ? &*block_log : nullptr,
          campaign_monitor ? &*campaign_monitor : nullptr);
    } else {
      return usage();
    }

    // Stop the flight recorder first so its final line reflects the
    // finished run.
    if (flusher) {
      flusher->stop();
      std::printf("[flight] %s (%llu snapshots, %llu rotations)\n",
                  flight_path.c_str(),
                  static_cast<unsigned long long>(flusher->flushes()),
                  static_cast<unsigned long long>(flusher->rotations()));
    }

    // End-of-run observability: the cache counters always get one line
    // (they used to be silently discarded with the cache), and the full
    // telemetry summary + JSON profile are emitted when a sink was set.
    if (command != "dynamic") {
      const core::FollowerCacheStats stats = cache.stats();
      std::printf(
          "follower cache: %llu hits / %llu misses / %llu evictions "
          "(hit rate %.3f)\n",
          static_cast<unsigned long long>(stats.hits),
          static_cast<unsigned long long>(stats.misses),
          static_cast<unsigned long long>(stats.evictions), stats.hit_rate());
      if (context.telemetry != nullptr && !telemetry_path.empty()) {
        core::record_cache_stats(telemetry, stats);
        support::print_summary(std::cout, telemetry);
        support::write_json(telemetry, telemetry_path);
        std::printf("[telemetry] %s\n", telemetry_path.c_str());
      }
      if (!iteration_log_path.empty()) {
        std::printf("[iteration-log] %s (%llu records)\n",
                    iteration_log_path.c_str(),
                    static_cast<unsigned long long>(telemetry.probe.total()));
      }
      if (!trace_path.empty()) {
        support::write_chrome_trace(telemetry, trace_path);
        std::printf("[trace] %s (%d tracks)\n", trace_path.c_str(),
                    telemetry.trace.thread_count());
      }
      if (block_log) {
        std::printf("[block-log] %s (%llu records)\n", block_log_path.c_str(),
                    static_cast<unsigned long long>(block_log->records()));
      }
    }
    if (health_monitor) {
      std::uint64_t stalls = 0, oscillations = 0, divergences = 0;
      for (const auto& [label, stats] : health_monitor->loop_stats()) {
        stalls += stats.stalls;
        oscillations += stats.oscillations;
        divergences += stats.divergences;
      }
      std::printf("[health] %llu incidents (%llu stalls, %llu oscillations, "
                  "%llu divergences)\n",
                  static_cast<unsigned long long>(health_monitor->incidents()),
                  static_cast<unsigned long long>(stalls),
                  static_cast<unsigned long long>(oscillations),
                  static_cast<unsigned long long>(divergences));
    }
    // The OpenMetrics snapshot is written last so it includes every gauge
    // the run produced (audit, cache, health).
    if (!metrics_path.empty()) {
      support::write_openmetrics(telemetry, metrics_path);
      std::printf("[metrics] %s\n", metrics_path.c_str());
    }
    return status;
  } catch (const support::health::SolverHealthError& error) {
    // The watchdog abort path: the flight recorder (destroyed during this
    // unwind) has already flushed the hecmine.health.v1 event.
    std::fprintf(stderr, "error: %s\n", error.what());
    return 5;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
