// validate_model — a user-facing self-check that replays the library's
// core validation suite as a readable report: every Section-III formula
// against Monte Carlo through the real pipeline, the GNEP solved two
// independent ways, closed forms against the numerical solvers, and
// Theorem 1 as an exact identity.
//
//   $ ./validate_model [--rounds=200000]
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/closed_forms.hpp"
#include "core/oracle.hpp"
#include "core/winning.hpp"
#include "net/network.hpp"
#include "support/cli.hpp"

namespace {

int checks_run = 0;
int checks_passed = 0;

void check(const char* label, double measured, double expected,
           double tolerance) {
  ++checks_run;
  const bool ok = std::abs(measured - expected) <= tolerance;
  if (ok) ++checks_passed;
  std::printf("  [%s] %-52s measured %10.5f  expected %10.5f\n",
              ok ? "PASS" : "FAIL", label, measured, expected);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hecmine;
  const support::CliArgs args(argc, argv);
  const std::size_t rounds =
      static_cast<std::size_t>(args.get("rounds", 200000));

  core::NetworkParams params;
  params.reward = 100.0;
  params.fork_rate = 0.25;
  params.edge_success = 0.8;
  params.edge_capacity = 8.0;
  const core::Prices prices{2.0, 1.0};
  const std::vector<core::MinerRequest> profile{
      {2.0, 1.0}, {1.5, 2.5}, {1.0, 4.0}};
  const core::Totals totals = core::aggregate(profile);

  std::printf("1. Section III probabilities (Monte Carlo, %zu rounds)\n",
              rounds);
  check("Theorem 1: sum of W_i^h",
        core::total_win_probability(profile, params.fork_rate), 1.0, 1e-12);
  {
    net::EdgePolicy policy{core::EdgeMode::kConnected, params.edge_success,
                           params.edge_capacity};
    const double mc = net::estimate_focal_win_probability(
        params, policy, profile, 0, rounds, 1);
    check("Eq. (9) connected expected W_0", mc,
          core::win_prob_connected(profile[0], totals, params.fork_rate,
                                   params.edge_success),
          0.005);
  }
  {
    net::EdgePolicy policy{core::EdgeMode::kStandalone, params.edge_success,
                           params.edge_capacity};
    const double mc = net::estimate_focal_win_probability(
        params, policy, profile, 0, rounds, 2);
    check("Eq. (8) standalone rejection W_0", mc,
          core::win_prob_standalone_rejection(profile[0], totals,
                                              params.fork_rate),
          0.005);
  }

  std::printf("\n2. Follower equilibria (two independent solvers)\n");
  const std::vector<double> budgets{30.0, 45.0, 60.0};
  const auto gnep =
      core::solve_followers(params, prices, budgets, core::EdgeMode::kStandalone);
  const auto vi = core::StandaloneGnepOracle(params, budgets,
                                             core::GnepAlgorithm::kVi)
                      .solve(prices);
  check("GNEP decomposition vs extragradient VI (total E)",
        gnep.totals.edge, vi.totals.edge, 0.01);
  check("GNEP exploitability at mu*",
        core::miner_exploitability(params, prices, budgets, gnep,
                                   core::EdgeMode::kStandalone),
        0.0, 1e-4);

  std::printf("\n3. Closed forms vs numerics (homogeneous miners)\n");
  {
    const auto numeric = core::solve_followers_symmetric(
        params, prices, 10.0, 5, core::EdgeMode::kConnected);
    const auto closed =
        core::homogeneous_binding_request(params, prices, 10.0, 5);
    check("Theorem 3 e* (binding budget)", numeric.request().edge, closed.edge,
          1e-6);
    check("Theorem 3 budget exhaustion",
          core::request_cost(closed, prices), 10.0, 1e-9);
  }
  {
    const auto numeric = core::solve_followers_symmetric(
        params, prices, 1e5, 5, core::EdgeMode::kConnected);
    const auto closed = core::homogeneous_sufficient_request(params, prices, 5);
    check("Corollary 1 e* (sufficient budget)", numeric.request().edge,
          closed.edge, 1e-6);
  }
  {
    const auto closed = core::standalone_sufficient_request(params, prices, 5);
    const auto numeric = core::solve_followers_symmetric(
        params, prices, 1e5, 5, core::EdgeMode::kStandalone);
    check("Table II e* (standalone, cap-aware)", numeric.request().edge,
          closed.request.edge, 1e-4);
    check("Table II surcharge mu*", numeric.surcharge, closed.surcharge,
          1e-3);
  }

  std::printf("\n%d/%d checks passed.\n", checks_passed, checks_run);
  return checks_passed == checks_run ? 0 : 1;
}
