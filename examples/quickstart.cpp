// Quickstart: solve the full Stackelberg game for a small mobile
// blockchain mining network and replay the equilibrium on the simulator.
//
//   $ ./quickstart [--miners=5] [--budget=40] [--reward=100] [--beta=0.2]
//
// Walks through the three layers of the library:
//   1. core::solve_leader_stage_homogeneous — equilibrium prices (leader
//      stage, Algorithm 1 / Theorem 4) and requests (follower stage,
//      Theorem 2);
//   2. net::MiningNetwork — the edge-cloud offloading fabric plus the PoW
//      race, replaying the equilibrium for many rounds;
//   3. comparison of empirical win rates with the model's probabilities.
#include <cstdio>
#include <vector>

#include "core/sp.hpp"
#include "core/winning.hpp"
#include "net/network.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace hecmine;
  const support::CliArgs args(argc, argv);

  core::NetworkParams params;
  params.reward = args.get("reward", 100.0);
  params.fork_rate = args.get("beta", 0.2);
  params.edge_success = args.get("h", 0.9);
  params.edge_capacity = args.get("capacity", 8.0);
  params.cost_edge = args.get("cost-edge", 1.0);
  params.cost_cloud = args.get("cost-cloud", 0.4);
  const int n = args.get("miners", 5);
  const double budget = args.get("budget", 40.0);

  // 1. Solve the two-stage game (prices anticipate miner reactions).
  const auto equilibrium = core::solve_leader_stage_homogeneous(
      params, budget, n, core::EdgeMode::kConnected);
  std::printf("Stackelberg equilibrium (connected mode, %d miners, B=%.0f)\n",
              n, budget);
  std::printf("  prices:   P_e = %.4f   P_c = %.4f\n",
              equilibrium.prices.edge, equilibrium.prices.cloud);
  std::printf("  request:  e* = %.4f    c* = %.4f per miner\n",
              equilibrium.followers.request().edge,
              equilibrium.followers.request().cloud);
  std::printf("  profits:  V_e = %.3f   V_c = %.3f\n",
              equilibrium.profits.edge, equilibrium.profits.cloud);

  // 2. Replay the equilibrium through the offloading network + PoW race.
  const std::vector<core::MinerRequest> profile =
      equilibrium.followers.expanded();
  net::EdgePolicy policy;
  policy.mode = core::EdgeMode::kConnected;
  policy.success_prob = params.edge_success;
  net::MiningNetwork network(params, policy, equilibrium.prices, /*seed=*/7);
  const std::size_t rounds = static_cast<std::size_t>(args.get("rounds", 50000));
  network.run_rounds(profile, rounds);

  // 3. Compare the simulation with the model.
  const core::Totals totals = core::aggregate(profile);
  std::printf("\nReplaying %zu mining rounds:\n", rounds);
  for (int i = 0; i < n; ++i) {
    const double empirical =
        static_cast<double>(network.stats().wins[static_cast<std::size_t>(i)]) /
        static_cast<double>(rounds);
    const double model = core::win_prob_connected(
        profile[static_cast<std::size_t>(i)], totals, params.fork_rate,
        params.edge_success);
    std::printf("  miner %d: empirical win rate %.4f  (model %.4f)\n", i,
                empirical, model);
  }
  std::printf("  ESP revenue/round: %.3f (model %.3f)\n",
              network.stats().revenue_edge / static_cast<double>(rounds),
              equilibrium.prices.edge * totals.edge);
  std::printf("  blocks on chain: %zu, fork fraction: %.4f\n",
              network.ledger().height(), network.ledger().fork_fraction());
  return 0;
}
