// Permissionless-chain scenario (paper Sec. V & VI-C): miners join and
// leave freely, so the miner count is a random variable. This example
// contrasts the dynamic symmetric equilibrium with the fixed-N benchmark,
// then runs the reinforcement-learning market: bandit miners that never
// observe each other's strategies, plus service providers that adapt
// prices between training periods.
//
//   $ ./permissionless_market [--mu=10] [--stddev=2] [--budget=12]
#include <cstdio>

#include "core/dynamic.hpp"
#include "rl/trainer.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace hecmine;
  const support::CliArgs args(argc, argv);

  core::DynamicGameConfig config;
  config.params.reward = args.get("reward", 100.0);
  config.params.fork_rate = args.get("beta", 0.2);
  config.params.edge_capacity = args.get("capacity", 8.0);
  config.prices = {args.get("price-edge", 2.0), args.get("price-cloud", 1.0)};
  config.budget = args.get("budget", 12.0);
  config.edge_success = args.get("h", 0.5);  // Eq. (26)'s service risk

  const double mu = args.get("mu", 10.0);
  const double stddev = args.get("stddev", 2.0);
  const auto population = core::PopulationModel::around(mu, stddev);
  std::printf("Population: N ~ Gaussian(%.1f, %.2f), truncated to [%d, %d]\n",
              mu, stddev * stddev, population.min_miners(),
              population.max_miners());

  // Model: the uncertainty premium on edge demand (paper Fig. 9).
  const auto dynamic = core::solve_dynamic_symmetric(config, population);
  const auto fixed = core::fixed_population_benchmark(config, population);
  std::printf("\nSymmetric equilibria at fixed prices (P_e=%.2f, P_c=%.2f):\n",
              config.prices.edge, config.prices.cloud);
  std::printf("  dynamic (uncertain N): e*=%.4f c*=%.4f\n",
              dynamic.request.edge, dynamic.request.cloud);
  std::printf("  fixed N = %.0f:         e*=%.4f c*=%.4f\n", mu, fixed.edge,
              fixed.cloud);
  std::printf("  uncertainty premium on e*: %+.2f%%\n",
              100.0 * (dynamic.request.edge / fixed.edge - 1.0));
  std::printf("  expected total edge demand %.3f vs capacity %.1f -> %s\n",
              dynamic.expected_total_edge, config.params.edge_capacity,
              dynamic.exceeds_capacity ? "EXCEEDS the standalone ESP"
                                       : "within capacity");

  // RL market: miners learn strategies; SPs re-price adaptively.
  rl::AdaptivePricingConfig market;
  market.trainer.blocks = args.get("blocks", 4000);
  market.trainer.edge_steps = 13;
  market.trainer.cloud_steps = 13;
  market.trainer.edge_success = config.edge_success;
  market.max_periods = args.get("periods", 10);
  const auto outcome = rl::adaptive_pricing_loop(
      config.params, config.prices, config.budget, population, market,
      /*seed=*/2026);
  std::printf("\nRL market after %d pricing periods (%s):\n", outcome.periods,
              outcome.converged ? "converged" : "still moving");
  std::printf("  learned prices: P_e=%.4f P_c=%.4f\n", outcome.prices.edge,
              outcome.prices.cloud);
  std::printf("  learned mean strategy: e=%.4f c=%.4f\n",
              outcome.miners.mean.edge, outcome.miners.mean.cloud);
  std::printf("  expected edge demand at E[N]: %.3f\n",
              outcome.miners.mean_expected_total_edge);
  return 0;
}
