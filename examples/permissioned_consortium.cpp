// Permissioned-chain scenario (paper Sec. IV): a consortium fixes the set
// of miners — here five devices with heterogeneous budgets — and the ESP's
// operation mode is a deployment decision. This example contrasts the two
// modes end to end:
//
//   * connected  — overflow auto-transfers to the CSP (NEP, Theorem 2);
//   * standalone — hard capacity E_max, jointly constrained requests
//                  (GNEP, Theorem 5, variational equilibrium).
//
//   $ ./permissioned_consortium [--capacity=6] [--price-edge=2]
//                               [--price-cloud=1] [--rounds=50000]
#include <cstdio>
#include <vector>

#include "core/oracle.hpp"
#include "net/network.hpp"
#include "support/cli.hpp"

namespace {

void print_equilibrium(const char* label,
                       const hecmine::core::EquilibriumProfile& eq,
                       const std::vector<double>& budgets,
                       const hecmine::core::Prices& prices) {
  std::printf("%s\n", label);
  for (std::size_t i = 0; i < eq.requests.size(); ++i) {
    std::printf(
        "  miner %zu (B=%5.1f): e=%7.4f c=%7.4f  spend=%7.3f  U=%7.4f\n", i,
        budgets[i], eq.requests[i].edge, eq.requests[i].cloud,
        hecmine::core::request_cost(eq.requests[i], prices), eq.utilities[i]);
  }
  std::printf("  totals: E=%.4f C=%.4f  (surcharge mu=%.4f, cap %s)\n\n",
              eq.totals.edge, eq.totals.cloud, eq.surcharge,
              eq.cap_active ? "ACTIVE" : "slack");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hecmine;
  const support::CliArgs args(argc, argv);

  core::NetworkParams params;
  params.reward = args.get("reward", 100.0);
  params.fork_rate = args.get("beta", 0.2);
  params.edge_success = args.get("h", 0.9);
  params.edge_capacity = args.get("capacity", 6.0);
  const core::Prices prices{args.get("price-edge", 2.0),
                            args.get("price-cloud", 1.0)};
  // Budgets straddle the unconstrained equilibrium spend so the poorer
  // consortium members are genuinely budget-limited.
  const std::vector<double> budgets{6.0, 10.0, 14.0, 18.0, 60.0};

  // Follower-stage equilibria in both operation modes.
  const auto connected =
      core::solve_followers(params, prices, budgets, core::EdgeMode::kConnected);
  print_equilibrium("Connected mode (NEP, unique NE):", connected, budgets,
                    prices);
  const auto standalone = core::solve_followers(params, prices, budgets,
                                                core::EdgeMode::kStandalone);
  print_equilibrium("Standalone mode (GNEP, variational equilibrium):",
                    standalone, budgets, prices);

  if (standalone.cap_active) {
    std::printf("Mode comparison: the standalone cap truncates edge demand "
                "(E %.3f connected -> %.3f standalone, capacity %.1f); the "
                "total stays comparable (S %.3f -> %.3f).\n\n",
                connected.totals.edge, standalone.totals.edge,
                params.edge_capacity, connected.totals.grand(),
                standalone.totals.grand());
  } else {
    std::printf("Mode comparison: standalone (h = 1) encourages edge "
                "purchases (E %.3f connected -> %.3f standalone); the total "
                "stays comparable (S %.3f -> %.3f).\n\n",
                connected.totals.edge, standalone.totals.edge,
                connected.totals.grand(), standalone.totals.grand());
  }

  // Replay the standalone equilibrium: the shared constraint guarantees the
  // ESP never rejects on the equilibrium path.
  net::EdgePolicy policy;
  policy.mode = core::EdgeMode::kStandalone;
  policy.capacity = params.edge_capacity;
  net::MiningNetwork network(params, policy, prices, /*seed=*/11);
  auto profile = standalone.requests;
  // Guard the floating-point boundary: at a binding cap the equilibrium sits
  // exactly on E = E_max, where accumulation error in the admission loop
  // could reject the last request.
  const double total_edge = standalone.totals.edge;
  if (total_edge > params.edge_capacity * (1.0 - 1e-9)) {
    const double shrink =
        params.edge_capacity * (1.0 - 1e-9) / total_edge;
    for (auto& request : profile) request.edge *= shrink;
  }
  const std::size_t rounds = static_cast<std::size_t>(args.get("rounds", 50000));
  network.run_rounds(profile, rounds);
  std::printf("Replayed %zu standalone rounds: rejections=%zu (expected 0), "
              "mean realized utilities:\n",
              rounds, network.stats().rejections);
  for (std::size_t i = 0; i < profile.size(); ++i) {
    std::printf("  miner %zu: realized %7.4f  (model %7.4f)\n", i,
                network.stats().utility[i].mean(), standalone.utilities[i]);
  }
  return 0;
}
