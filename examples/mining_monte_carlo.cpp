// Chain-substrate walkthrough: the PoW race simulator validates the
// winning-probability model of Section III by Monte Carlo, including the
// degraded forms under connected-mode transfer (Eq. 7/9) and standalone
// rejection (Eq. 8).
//
//   $ ./mining_monte_carlo [--rounds=200000] [--beta=0.25]
#include <cstdio>
#include <vector>

#include "chain/simulator.hpp"
#include "core/winning.hpp"
#include "net/network.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace hecmine;
  const support::CliArgs args(argc, argv);
  const std::size_t rounds =
      static_cast<std::size_t>(args.get("rounds", 200000));
  const double beta = args.get("beta", 0.25);

  const std::vector<core::MinerRequest> profile{
      {2.0, 1.0}, {1.5, 2.5}, {1.0, 4.0}, {3.0, 0.5}};
  const core::Totals totals = core::aggregate(profile);
  std::printf("Profile: E=%.1f C=%.1f S=%.1f, beta=%.2f, %zu rounds\n\n",
              totals.edge, totals.cloud, totals.grand(), beta, rounds);

  // 1. Full satisfaction: the race reproduces Eq. (6) / Theorem 1.
  chain::MiningSimulator simulator({beta, 1.0, 1.0}, /*seed=*/3);
  std::vector<chain::Allocation> allocations;
  for (const auto& request : profile)
    allocations.push_back({request.edge, request.cloud});
  const auto tally = simulator.run(allocations, rounds);
  std::printf("Eq. (6) W_i^h — everyone fully served:\n");
  double model_sum = 0.0;
  for (std::size_t i = 0; i < profile.size(); ++i) {
    const double model = core::win_prob_full(profile[i], totals, beta);
    model_sum += model;
    std::printf("  miner %zu: empirical %.4f | model %.4f\n", i,
                tally.win_rate(i), model);
  }
  std::printf("  Theorem 1: model probabilities sum to %.6f\n", model_sum);
  std::printf("  forks resolved: %zu (%.2f%% of rounds), reward steals: %zu\n\n",
              tally.forks,
              100.0 * static_cast<double>(tally.forks) /
                  static_cast<double>(tally.rounds),
              tally.steals);

  // 2. Degraded service, through the full offloading pipeline.
  core::NetworkParams params;
  params.reward = 100.0;
  params.fork_rate = beta;
  params.edge_success = 0.8;
  params.edge_capacity = 5.0;
  net::EdgePolicy connected{core::EdgeMode::kConnected, 0.8, 5.0};
  net::EdgePolicy standalone{core::EdgeMode::kStandalone, 0.8, 5.0};
  std::printf("Degraded service for the focal miner 0:\n");
  const double eq9 = net::estimate_focal_win_probability(
      params, connected, profile, 0, rounds, /*seed=*/4);
  std::printf("  connected (Eq. 9):   empirical %.4f | model %.4f\n", eq9,
              core::win_prob_connected(profile[0], totals, beta, 0.8));
  const double eq8 = net::estimate_focal_win_probability(
      params, standalone, profile, 0, rounds, /*seed=*/5);
  std::printf("  rejection (Eq. 8):   empirical %.4f | model %.4f\n", eq8,
              core::win_prob_standalone_rejection(profile[0], totals, beta));

  // 3. Ledger forensics.
  const auto& ledger = simulator.ledger();
  std::size_t edge_blocks = 0;
  for (const auto& block : ledger.blocks())
    if (block.source == chain::BlockSource::kEdge) ++edge_blocks;
  std::printf("\nLedger: height %zu, %zu edge-mined blocks (%.1f%%), "
              "orphan rate %.4f\n",
              ledger.height(), edge_blocks,
              100.0 * static_cast<double>(edge_blocks) /
                  static_cast<double>(ledger.height()),
              ledger.fork_fraction());
  return 0;
}
